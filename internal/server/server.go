// Package server is the VPGA flow service: an HTTP/JSON daemon that
// exposes the implementation flow, the Table 1/2 matrix and the
// exploration sweeps as declarative, serializable requests
// (core.FlowRequest and friends) instead of language-level call
// signatures.
//
//	POST /v1/runs                one flow run (repair ladder optional)
//	POST /v1/matrix              the 4-design x 2-arch x 2-flow matrix
//	POST /v1/sweeps/granularity  PLB-architecture family sweep
//	POST /v1/sweeps/routing      per-channel track-capacity sweep
//	GET  /v1/runs/{id}           job status / result
//	GET  /v1/runs/{id}/trace     Chrome trace-event JSON of the job
//	GET  /v1/runs/{id}/events    live SSE stream of the job's telemetry
//	GET  /healthz                liveness + queue stats
//	GET  /metrics                Prometheus text metrics (histograms incl.)
//
// Every run-shaped result is memoized in a bounded LRU cache keyed by
// the request's content address (FlowRequest.CacheKey): flows are
// seed-deterministic by construction, so a cache hit returns a report
// bit-identical (after StripMetrics) to a fresh run. Jobs execute on
// a bounded worker pool behind a bounded queue — a full queue answers
// 429 with Retry-After instead of blocking — with per-job timeouts
// through the flow's context plumbing, and Shutdown drains gracefully.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vpga/internal/artifact"
	"vpga/internal/core"
	"vpga/internal/faultinject"
	"vpga/internal/obs"
	"vpga/internal/qor"
)

// Options configures a Server. The zero value serves with GOMAXPROCS
// workers, a 2x-workers queue, a 256-entry cache, no per-job timeout
// and 64 retained job records.
type Options struct {
	// Workers bounds concurrently executing jobs (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full
	// queue rejects submissions with 429 (0 = 2*Workers).
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (0 = 256).
	CacheSize int
	// JobTimeout bounds each job's wall time through the flow's context
	// plumbing; an expired job fails with stage "timeout" (0 = none).
	JobTimeout time.Duration
	// JobsKeep bounds retained completed-job records — status and trace
	// of older jobs are evicted, oldest first (0 = 64). The result
	// cache is unaffected by job eviction.
	JobsKeep int
	// LedgerPath, when set, appends one qor.Record per completed
	// flow-run-shaped result (runs, matrix cells) to the JSONL run
	// ledger at that path — the durable QoR history the drift gate
	// consumes. Append failures are counted, never fatal.
	LedgerPath string
	// DataDir, when set, turns on the crash-safety layer rooted there:
	// a CRC-framed job journal (DataDir/journal.wal) replayed on
	// restart — incomplete jobs are re-enqueued under their original
	// IDs — and a checksummed content-addressed artifact store
	// (DataDir/artifacts) that persists completed results and
	// placement checkpoints across restarts. Empty = in-memory only,
	// exactly the pre-journal behavior.
	DataDir string
	// PeerLookup, when set, adds a peer-cache tier to dispatch: after
	// the local LRU and artifact store both miss, the function is asked
	// for the raw JSON of a result computed elsewhere in the cluster,
	// keyed by content address. A hit is promoted into the memory LRU
	// only — never the artifact store, whose contents stay exactly what
	// this node computed, so a peer result is never double-stored — and
	// a payload that fails to decode degrades to local compute.
	PeerLookup func(ctx context.Context, kind, key string) ([]byte, bool)
	// Logger receives structured request/job lifecycle records (nil =
	// discard). Jobs log with job_id/kind/trace_id attributes so a
	// cluster-wide grep on one trace ID finds every node's part of it.
	Logger *slog.Logger
	// Node names this worker in log lines ("" = standalone) — typically
	// its advertised base URL in a cluster.
	Node string

	// testJobStart, when set by a test, runs at the top of every job on
	// its worker goroutine — tests block here to hold jobs "running"
	// and fill the queue deterministically.
	testJobStart func(j *job)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 256
	}
	if o.JobsKeep <= 0 {
		o.JobsKeep = 64
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// job is one queued unit of work: a closure over its resolved request
// plus the bookkeeping the status and trace endpoints serve.
type job struct {
	id      string
	kind    string // "run", "matrix", "sweep/granularity", "sweep/routing"
	key     string // content address ("" = uncacheable)
	label   string
	tracer  *obs.Tracer
	created time.Time
	// exec runs the job; cachePrep converts its result into the
	// immutable value stored in the cache (nil = store as returned);
	// ledger extracts the result's QoR records for the run ledger
	// (nil = the job is not ledger-shaped).
	exec      func(ctx context.Context, tr *obs.Tracer) (any, error)
	cachePrep func(any) any
	ledger    func(any) []qor.Record
	// body is the canonical JSON of the originating request — what the
	// journal persists on acceptance so replay can rebuild the job
	// (nil = not journaled).
	body []byte
	// stageKeys is the run's per-stage key chain (run jobs only):
	// which content addresses the job's artifacts live under, so
	// clients can see which prefix the run will reuse.
	stageKeys []core.StageKey
	// traceID is the distributed trace this job belongs to, taken from
	// the X-Vpga-Trace header a coordinator stamped on the submission
	// ("" = untraced local job).
	traceID string
	// replayed marks a job rebuilt from the journal after a restart.
	replayed bool

	done chan struct{} // closed when the job reaches done/failed

	mu      sync.Mutex
	status  string // "queued", "running", "done", "failed"
	result  any
	errMsg  string
	stage   string // failing flow stage, when known
	errKind string // machine-readable class: "timeout", "cancelled", ""
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// complete records the outcome and wakes waiters.
func (j *job) complete(result any, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = "failed"
		j.errMsg = err.Error()
		j.errKind = errKind(err)
		var fe *core.FlowError
		if errors.As(err, &fe) {
			j.stage = fe.Stage
		}
	} else {
		j.status = "done"
		j.result = result
	}
	j.mu.Unlock()
	close(j.done)
}

// response snapshots the job as its API representation.
func (j *job) response() jobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobResponse{
		ID: j.id, Kind: j.kind, Status: j.status, Key: j.key,
		Result: j.result, Error: j.errMsg, Stage: j.stage, ErrorKind: j.errKind,
		StageKeys: j.stageKeys, TraceID: j.traceID,
	}
}

// jobResponse is the envelope of every job-shaped endpoint. Result is
// kind-specific: *core.Report for runs, MatrixResult for matrices,
// []core.SweepPoint / []core.RoutingPoint for sweeps.
type jobResponse struct {
	ID     string `json:"id,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Key    string `json:"key,omitempty"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	Stage  string `json:"stage,omitempty"`
	// ErrorKind is the machine-readable failure class ("timeout",
	// "cancelled") a coordinator keys off — a timeout that happened on a
	// remote worker must still count as a timeout when the envelope
	// comes back over HTTP, without parsing the error string.
	ErrorKind string `json:"error_kind,omitempty"`
	// StageKeys is the run's per-stage key chain (run jobs only): the
	// content addresses of the stage-granular build-cache artifacts the
	// run reads and writes, in pipeline order.
	StageKeys []core.StageKey `json:"stage_keys,omitempty"`
	// TraceID is the distributed trace the job belongs to — minted by
	// the coordinator per client job, or echoed from the X-Vpga-Trace
	// header a submission carried ("" = untraced).
	TraceID string `json:"trace_id,omitempty"`
	// RequestID echoes the request's X-Request-ID on error envelopes so
	// a rejected submission is correlatable in logs without headers.
	RequestID string `json:"request_id,omitempty"`
}

// Server is the flow service. Create with New, serve with any
// http.Server (it implements http.Handler), stop with Shutdown.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *lru
	queue chan *job
	log   *slog.Logger // opts.Logger with the node attr pre-bound

	// Crash-safety layer (nil when Options.DataDir is empty): the job
	// journal and the persistent artifact store.
	journal *journal
	store   *artifact.Store
	// stages is the stage-granular build cache over the artifact store
	// (nil without DataDir): every flow run the daemon executes
	// restores the deepest cached prefix of its stage-key chain and
	// persists the stages it computes, so requests sharing a prefix —
	// clock-target sweeps, routing-knob variants, flow-a/b pairs —
	// reuse each other's artifacts across jobs and restarts.
	stages *core.StageCache

	mu        sync.Mutex
	jobs      map[string]*job
	inflight  map[string]*job // queued/running jobs by cache key (dedupe)
	doneOrder []string        // completed jobs, oldest first, for eviction
	draining  bool

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	nextID  atomic.Int64
	start   time.Time

	// Metrics counters (atomic; surfaced by /metrics).
	reqTotal, cacheHits, cacheMisses atomic.Int64
	rejected, completed, failed      atomic.Int64
	timeouts                         atomic.Int64
	running                          atomic.Int64
	ledgerRecords, ledgerErrors      atomic.Int64
	replayed                         atomic.Int64
	ioRetries, ioRecoveries          atomic.Int64
	peerHits, peerMisses             atomic.Int64
	peerServed                       atomic.Int64

	// Latency histograms (zero-dependency log buckets; see histogram.go).
	jobDur    *histogram
	queueWait *histogram
	stageDur  *histogramVec
}

// New starts a Server: its worker pool runs until Shutdown. With
// Options.DataDir set, New opens the journal and artifact store,
// replays the journal, and re-enqueues every job that never reached a
// terminal state before the last shutdown or crash.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	var (
		store   *artifact.Store
		jn      *journal
		pending []journalEntry
		err     error
	)
	if opts.DataDir != "" {
		store, err = artifact.Open(filepath.Join(opts.DataDir, "artifacts"))
		if err != nil {
			return nil, err
		}
		jn, pending, err = openJournal(filepath.Join(opts.DataDir, "journal.wal"))
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		cache:    newLRU(opts.CacheSize),
		queue:    make(chan *job, opts.QueueDepth),
		journal:  jn,
		store:    store,
		stages:   core.NewStageCache(store),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		baseCtx:  ctx,
		cancel:   cancel,
		start:    time.Now(),

		jobDur:    &histogram{},
		queueWait: &histogram{},
		stageDur:  newHistogramVec("stage"),
	}
	s.log = opts.Logger
	if opts.Node != "" {
		s.log = s.log.With("node", opts.Node)
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("POST /v1/sweeps/granularity", s.handleGranularitySweep)
	s.mux.HandleFunc("POST /v1/sweeps/routing", s.handleRoutingSweep)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	// Aliases matching the coordinator's job-shaped routes, so tooling
	// can poll either daemon role with one URL scheme.
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheLookup)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if jn != nil {
		s.replayJournal(pending)
	}
	return s, nil
}

// replayJournal reconstructs job state from the replayed entries:
// jobs with a terminal entry are history (their results live in the
// artifact store, keyed by content address); jobs without one are
// rebuilt from their journaled bodies and re-enqueued under their
// original IDs, so a client polling a pre-crash job ID keeps working
// across the restart. The journal is then compacted down to the
// still-incomplete accepted entries.
func (s *Server) replayJournal(entries []journalEntry) {
	type acc struct {
		entry    journalEntry
		terminal bool
	}
	var (
		order []string
		byID  = map[string]*acc{}
		maxID int64
	)
	for _, e := range entries {
		if n := jobIDNum(e.ID); n > maxID {
			maxID = n
		}
		switch e.State {
		case "accepted":
			if byID[e.ID] == nil {
				byID[e.ID] = &acc{entry: e}
				order = append(order, e.ID)
			}
		case "done", "failed":
			if a := byID[e.ID]; a != nil {
				a.terminal = true
			}
		}
	}
	// Resume the ID sequence past every journaled job, so replayed IDs
	// never collide with fresh submissions.
	if maxID > s.nextID.Load() {
		s.nextID.Store(maxID)
	}
	var (
		jobs []*job
		keep []journalEntry
	)
	for _, id := range order {
		a := byID[id]
		if a.terminal {
			continue
		}
		j, err := s.buildJob(a.entry.Kind, a.entry.Body)
		if err != nil {
			// The body no longer builds (schema drift); drop the job —
			// the client's resubmission will be validated afresh.
			continue
		}
		j.id = id
		j.replayed = true
		jobs = append(jobs, j)
		e := a.entry
		e.Seq = int64(len(keep) + 1)
		keep = append(keep, e)
	}
	s.journal.compact(keep)
	if len(jobs) > 0 {
		// Register every replayed job before the (possibly slow,
		// backpressured) re-enqueue: a client that was polling
		// GET /v1/runs/{id} or following the SSE stream across the
		// restart must find the job immediately, not 404 until its
		// queue send happens to land.
		s.mu.Lock()
		for _, j := range jobs {
			s.jobs[j.id] = j
			if j.key != "" {
				s.inflight[j.key] = j
			}
		}
		s.mu.Unlock()
		go s.enqueueReplay(jobs)
	}
}

// jobIDNum extracts the numeric part of a "j%06d" job ID (0 when the
// ID is not of that shape).
func jobIDNum(id string) int64 {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// enqueueReplay feeds replayed jobs into the queue with blocking
// backpressure (a restart may hold more incomplete jobs than the
// queue bounds). The jobs are already registered in s.jobs; this only
// performs the queue sends. Sends happen under the server mutex with
// draining checked, so a concurrent Shutdown — which closes the queue
// under the same mutex — can never race a send onto a closed channel.
func (s *Server) enqueueReplay(jobs []*job) {
	for _, j := range jobs {
		for {
			s.mu.Lock()
			if s.draining {
				s.mu.Unlock()
				return
			}
			var sent bool
			select {
			case s.queue <- j:
				sent = true
			default:
			}
			s.mu.Unlock()
			if sent {
				s.replayed.Add(1)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// retryIO wraps transient I/O (journal appends, artifact writes,
// ledger appends) in a bounded jittered-backoff retry. Injected
// faults are counter-based, so the re-attempt re-arms the fault point
// and usually clears; a persistent real failure still surfaces after
// the attempts are spent.
func (s *Server) retryIO(op func() error) error {
	retried := false
	err := faultinject.Retry(3, 2*time.Millisecond, op, func(int, error) {
		retried = true
		s.ioRetries.Add(1)
	})
	if err == nil && retried {
		s.ioRecoveries.Add(1)
	}
	return err
}

// ServeHTTP implements http.Handler. The request ID is echoed (or
// minted) on the response before mux dispatch, so every handler —
// error paths included — already sees it set.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	reqID := ensureRequestID(w, r)
	s.log.Debug("request", "method", r.Method, "path", r.URL.Path, "request_id", reqID)
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the service: no new submissions are accepted (503),
// queued and running jobs finish, then the worker pool exits. If ctx
// expires first, in-flight flow runs are cancelled at their next
// iteration boundary and Shutdown still waits for the pool before
// returning ctx's error. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		s.cancel()
		s.journal.close()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-drained
		s.journal.close()
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes on drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	j.setStatus("running")
	s.queueWait.observe(time.Since(j.created).Seconds())
	s.running.Add(1)
	defer s.running.Add(-1)
	if s.opts.testJobStart != nil {
		s.opts.testJobStart(j)
	}
	// A "running" entry is a progress note, not a durability boundary:
	// no fsync, no retry — replay treats accepted-but-not-terminal jobs
	// identically whether or not this landed.
	s.journal.append(journalEntry{ID: j.id, State: "running"}, false)
	ctx := s.baseCtx
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer cancel()
	}
	execStart := time.Now()
	res, err := j.exec(ctx, j.tracer)
	// An injected transient fault (a stage-boundary disk error the
	// harness modeled) is retried end-to-end with jittered backoff:
	// flows are deterministic, so the re-run recomputes the same
	// result, and the counter-based fault usually does not re-fire.
	for attempt := 1; attempt <= 2 && err != nil &&
		errors.Is(err, faultinject.ErrInjected) && ctx.Err() == nil; attempt++ {
		s.ioRetries.Add(1)
		time.Sleep(time.Duration(attempt) * 2 * time.Millisecond)
		res, err = j.exec(ctx, j.tracer)
		if err == nil {
			s.ioRecoveries.Add(1)
		}
	}
	s.jobDur.observe(time.Since(execStart).Seconds())
	s.observeStages(j.tracer)
	if err != nil {
		s.failed.Add(1)
		if isTimeout(err) {
			s.timeouts.Add(1)
		}
	} else {
		s.completed.Add(1)
		s.appendLedger(j, res)
		if j.key != "" {
			v := res
			if j.cachePrep != nil {
				v = j.cachePrep(res)
			}
			s.cache.put(j.key, v)
			s.persistResult(j, v)
		}
	}
	s.journalTerminal(j, err)
	if err != nil {
		s.log.Warn("job failed", "job_id", j.id, "kind", j.kind, "trace_id", j.traceID,
			"duration", time.Since(execStart).Round(time.Millisecond), "error", err)
	} else {
		s.log.Info("job done", "job_id", j.id, "kind", j.kind, "trace_id", j.traceID,
			"duration", time.Since(execStart).Round(time.Millisecond))
	}
	j.complete(res, err)
	s.retire(j)
}

// persistResult spills a completed result to the artifact store, so a
// restarted daemon serves it without recomputing. Best-effort with
// bounded retry: a result that fails to persist is still served from
// memory, and a post-restart resubmission simply recomputes it.
func (s *Server) persistResult(j *job, v any) {
	if s.store == nil || j.key == "" {
		return
	}
	enc, err := json.Marshal(v)
	if err != nil {
		return
	}
	s.retryIO(func() error { return s.store.Put(j.key, enc) })
}

// journalTerminal durably records the job's outcome. The fsynced
// terminal entry is what lets the post-restart replay skip the job;
// if the append ultimately fails the job merely replays after a crash
// — recomputing a deterministic flow, never corrupting state.
func (s *Server) journalTerminal(j *job, jobErr error) {
	if s.journal == nil {
		return
	}
	e := journalEntry{ID: j.id, State: "done"}
	if jobErr != nil {
		e.State = "failed"
		e.Error = jobErr.Error()
		var fe *core.FlowError
		if errors.As(jobErr, &fe) {
			e.Stage = fe.Stage
		}
	}
	s.retryIO(func() error { return s.journal.append(e, true) })
}

// isTimeout reports whether a job failed on its wall-clock budget:
// either the context deadline surfaced directly or the flow supervisor
// already classified the failing stage as "timeout".
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var fe *core.FlowError
	return errors.As(err, &fe) && fe.Stage == "timeout"
}

// errKind distills a job error into the machine-readable class the
// response envelope carries ("" = unclassified). Coordinators use it
// to keep cluster-level counters (vpgad_jobs_timeout_total) correct
// for failures that happened on a remote worker.
func errKind(err error) string {
	switch {
	case err == nil:
		return ""
	case isTimeout(err):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	}
	var fe *core.FlowError
	if errors.As(err, &fe) && fe.Stage == "cancelled" {
		return "cancelled"
	}
	return ""
}

// observeStages feeds the job's stage spans into the per-stage
// duration histograms.
func (s *Server) observeStages(tr *obs.Tracer) {
	for _, run := range tr.Runs() {
		for _, span := range run.Spans() {
			s.stageDur.with(span.Stage).observe(span.Dur.Seconds())
		}
	}
}

// appendLedger appends a completed job's QoR records to the run
// ledger, when both a ledger path and a ledger-shaped job are present.
// The ledger is observability, not a result: append failures count on
// vpgad_ledger_errors_total and never fail the job.
func (s *Server) appendLedger(j *job, res any) {
	if s.opts.LedgerPath == "" || j.ledger == nil {
		return
	}
	recs := j.ledger(res)
	if len(recs) == 0 {
		return
	}
	now := time.Now()
	for i := range recs {
		recs[i].Stamp(now, "")
	}
	// Bounded retry: a failed append truncates back to a clean tail,
	// so re-appending cannot stack partial lines.
	if err := s.retryIO(func() error {
		return qor.Append(s.opts.LedgerPath, recs...)
	}); err != nil {
		s.ledgerErrors.Add(1)
		return
	}
	s.ledgerRecords.Add(int64(len(recs)))
}

// retire enforces the completed-job retention bound: job records —
// status and tracer — beyond Options.JobsKeep are evicted oldest
// first. The result cache keeps serving evicted jobs' results.
func (s *Server) retire(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.opts.JobsKeep {
		old := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, old)
	}
}

// newJob allocates a job record.
func (s *Server) newJob(kind, key, label string, exec func(context.Context, *obs.Tracer) (any, error)) *job {
	return &job{
		id:      fmt.Sprintf("j%06d", s.nextID.Add(1)),
		kind:    kind,
		key:     key,
		label:   label,
		tracer:  obs.NewTracer(),
		created: time.Now(),
		exec:    exec,
		done:    make(chan struct{}),
		status:  "queued",
	}
}

// submit enqueues a job with explicit backpressure: a full queue is a
// 429 with Retry-After, a draining server a 503 — submissions never
// block a worker or the caller. An accepted job is journaled (fsync)
// before the acceptance is visible; a journal failure after bounded
// retry is availability-over-durability — the job still runs, it just
// would not survive a crash, and the error counter records the gap.
func (s *Server) submit(j *job) (status int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return http.StatusServiceUnavailable, errors.New("server is draining")
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		if j.key != "" {
			s.inflight[j.key] = j
		}
		if s.journal != nil && j.body != nil {
			e := journalEntry{ID: j.id, State: "accepted", Kind: j.kind, Key: j.key, Body: j.body}
			s.retryIO(func() error { return s.journal.append(e, true) })
		}
		s.log.Info("job accepted", "job_id", j.id, "kind", j.kind, "label", j.label, "trace_id", j.traceID)
		return 0, nil
	default:
		s.rejected.Add(1)
		return http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d pending); retry later", cap(s.queue))
	}
}

// decodeJSON strictly decodes a bounded request body.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, 4<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, jobResponse{
		Status: "rejected", Error: err.Error(),
		RequestID: responseRequestID(w),
	})
}

// wantWait reports whether the request asked to block until the job
// completes (?wait=1 / ?wait=true).
func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// dispatch is the tail every submission endpoint shares: cache lookup
// (memory LRU, then the persistent artifact store), in-flight dedupe,
// enqueue with backpressure, and the synchronous-wait option.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, j *job) {
	// Thread the coordinator's trace context (if any) into the job and
	// its tracer before any answer path: cached responses echo the
	// trace ID too, and the tracer stamps it on the job's Chrome trace
	// fragment so the merged cluster timeline can claim it.
	if tid, _ := parseTraceHeader(r); tid != "" {
		j.traceID = tid
		j.tracer.SetTraceID(tid)
	}
	if v, ok := s.cache.get(j.key); ok {
		s.cacheHits.Add(1)
		writeCached(w, j, v)
		return
	}
	if v, ok := s.storeGet(j.key, j.kind); ok {
		// Promote the persisted result into the LRU; serving it is a
		// cache hit that happened to survive a restart.
		s.cacheHits.Add(1)
		s.cache.put(j.key, v)
		writeCached(w, j, v)
		return
	}
	// Peer-cache tier: another node may have computed this exact
	// request already. A decoded hit is promoted into the memory LRU
	// only (no artifact-store write — the peer already persists it);
	// a corrupt payload is a miss and the job computes locally.
	if s.opts.PeerLookup != nil && j.key != "" {
		if raw, ok := s.opts.PeerLookup(r.Context(), j.kind, j.key); ok {
			if v, decoded := decodeStored(j.kind, raw); decoded {
				s.peerHits.Add(1)
				s.cache.put(j.key, v)
				writeCached(w, j, v)
				return
			}
		}
		s.peerMisses.Add(1)
	}
	s.cacheMisses.Add(1)
	// In-flight dedupe: an identical request races (or, after a crash,
	// follows) a queued/running job with the same content address —
	// attach to that job instead of computing the same result twice.
	s.mu.Lock()
	cur := s.inflight[j.key]
	s.mu.Unlock()
	if j.key != "" && cur != nil {
		respondJob(w, r, cur)
		return
	}
	if status, err := s.submit(j); err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		writeError(w, status, err)
		return
	}
	respondJob(w, r, j)
}

// retryAfterSeconds derives the 429 Retry-After hint from the actual
// backlog: the jobs ahead of a resubmission (queued plus running)
// spread over the worker pool, each costing the observed median job
// duration. A hardcoded constant under-hints when the queue is deep
// with minute-scale matrix jobs and over-hints for an empty queue of
// millisecond runs; this tracks both.
func (s *Server) retryAfterSeconds() int {
	depth := len(s.queue) + int(s.running.Load())
	return retryAfterHint(depth, s.opts.Workers, s.jobDur.quantile(0.5))
}

// retryAfterHint is the pure hint rule: ceil(backlog/workers) rounds
// of the median job duration, clamped to [1s, 120s]. With no duration
// history yet the median is 0 and the hint floors at 1s.
func retryAfterHint(depth, workers int, medianSec float64) int {
	if workers < 1 {
		workers = 1
	}
	rounds := (depth + workers - 1) / workers
	hint := int(math.Ceil(float64(rounds) * medianSec))
	if hint < 1 {
		hint = 1
	}
	if hint > 120 {
		hint = 120
	}
	return hint
}

// respondJob answers a submission with the job's state, optionally
// blocking on ?wait=1 until it completes.
func respondJob(w http.ResponseWriter, r *http.Request, j *job) {
	if wantWait(r) {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client gone; the job keeps running. Report where it stands.
		}
	}
	resp := j.response()
	status := http.StatusAccepted
	if resp.Status == "done" || resp.Status == "failed" {
		status = http.StatusOK
	}
	writeJSON(w, status, resp)
}

// writeCached answers a submission from a cached value.
func writeCached(w http.ResponseWriter, j *job, v any) {
	if rep, isReport := v.(*core.Report); isReport {
		v = rep.Clone() // never hand the cached report itself to encoders
	}
	writeJSON(w, http.StatusOK, jobResponse{
		Kind: j.kind, Status: "done", Cached: true, Key: j.key, Result: v,
		TraceID: j.traceID,
	})
}

// storeGet consults the persistent artifact store for a completed
// result of this kind; every failure mode inside the store is a miss.
func (s *Server) storeGet(key, kind string) (any, bool) {
	if s.store == nil || key == "" {
		return nil, false
	}
	raw, ok := s.store.Get(key)
	if !ok {
		return nil, false
	}
	return decodeStored(kind, raw)
}

// handleCacheLookup serves GET /v1/cache/{key}: the lookup-only peer
// endpoint answering the raw JSON of a locally cached or persisted
// result. It never computes and never forwards — a miss is a plain
// 404 — so peer lookups cannot cascade across the cluster.
func (s *Server) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if v, ok := s.cache.get(key); ok {
		if rep, isReport := v.(*core.Report); isReport {
			v = rep.Clone() // same rule as writeCached: never hand out the cached report
		}
		if enc, err := json.Marshal(v); err == nil {
			s.peerServed.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Write(enc)
			return
		}
	}
	if s.store != nil {
		if raw, ok := s.store.Get(key); ok {
			s.peerServed.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Write(raw)
			return
		}
	}
	writeError(w, http.StatusNotFound, errors.New("no cached result for key"))
}

// handleStatus serves GET /v1/runs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown or evicted job id"))
		return
	}
	writeJSON(w, http.StatusOK, j.response())
}

// handleTrace serves GET /v1/runs/{id}/trace: the job's Chrome
// trace-event JSON (chrome://tracing, ui.perfetto.dev).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown or evicted job id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := j.tracer.WriteChromeTrace(w); err != nil {
		// Headers are gone; nothing useful left to do but log-free bail.
		return
	}
}

// statsSnapshot is the one shared source of the daemon's runtime
// stats: /healthz renders it as JSON and /metrics as Prometheus text,
// so the two surfaces cannot drift apart (a test asserts they agree).
type statsSnapshot struct {
	Draining      bool
	UptimeSeconds float64
	Workers       int
	QueueDepth    int
	QueueCapacity int
	JobsRunning   int64
	CacheEntries  int

	ReqTotal, CacheHits, CacheMisses int64
	Rejected, Completed, Failed      int64
	Timeouts, CacheEvictions         int64
	LedgerRecords, LedgerErrors      int64

	// Crash-safety layer (zero when Options.DataDir is unset).
	JournalEnabled                 bool
	JournalAppends, JournalErrors  int64
	JournalReplayedJobs            int64
	JournalCorruptFrames           int64
	JournalLastFsyncAgeSeconds     float64 // -1 = never synced
	StoreEntries                   int64
	StoreHits, StoreCorruptEvicted int64

	// Fault-injection and transient-I/O recovery counters.
	FaultsInjected          int64
	IORetries, IORecoveries int64

	// Peer-cache tier (zero when Options.PeerLookup is unset and no
	// peer has queried GET /v1/cache/{key}).
	PeerHits, PeerMisses int64
	PeerServed           int64

	// Stage-granular build cache, per stage (nil when Options.DataDir
	// is unset — the stage cache needs the artifact store).
	StageCache core.StageCacheStats
}

// stats snapshots every runtime stat both observability endpoints
// serve. Counters are read individually (not under one lock), so a
// snapshot taken during a state transition may be skewed by one
// in-flight job — fine for monitoring, and both endpoints share
// whatever skew there is by construction.
func (s *Server) stats() statsSnapshot {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	st := statsSnapshot{
		Draining:      draining,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		JobsRunning:   s.running.Load(),
		CacheEntries:  s.cache.len(),

		ReqTotal: s.reqTotal.Load(), CacheHits: s.cacheHits.Load(), CacheMisses: s.cacheMisses.Load(),
		Rejected: s.rejected.Load(), Completed: s.completed.Load(), Failed: s.failed.Load(),
		Timeouts: s.timeouts.Load(), CacheEvictions: s.cache.evictions(),
		LedgerRecords: s.ledgerRecords.Load(), LedgerErrors: s.ledgerErrors.Load(),

		JournalLastFsyncAgeSeconds: -1,
		FaultsInjected:             faultinject.Active().Injected(),
		IORetries:                  s.ioRetries.Load(),
		IORecoveries:               s.ioRecoveries.Load(),
		PeerHits:                   s.peerHits.Load(),
		PeerMisses:                 s.peerMisses.Load(),
		PeerServed:                 s.peerServed.Load(),
	}
	if s.journal != nil {
		st.JournalEnabled = true
		st.JournalAppends = s.journal.appends.Load()
		st.JournalErrors = s.journal.errs.Load()
		st.JournalReplayedJobs = s.replayed.Load()
		st.JournalCorruptFrames = s.journal.corruptFrames
		if ns := s.journal.lastFsync.Load(); ns > 0 {
			st.JournalLastFsyncAgeSeconds = time.Since(time.Unix(0, ns)).Seconds()
		}
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.StoreEntries = int64(s.store.Len())
		st.StoreHits = ss.Hits
		st.StoreCorruptEvicted = ss.CorruptEvicted
	}
	st.StageCache = s.stages.Stats()
	return st
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.stats()
	status := "ok"
	code := http.StatusOK
	if st.Draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"uptime_seconds": st.UptimeSeconds,
		"workers":        st.Workers,
		"queue_depth":    st.QueueDepth,
		"queue_capacity": st.QueueCapacity,
		"jobs_running":   st.JobsRunning,
		"cache_entries":  st.CacheEntries,
		"journal": map[string]any{
			"enabled":                st.JournalEnabled,
			"appends":                st.JournalAppends,
			"errors":                 st.JournalErrors,
			"replayed_jobs":          st.JournalReplayedJobs,
			"corrupt_frames":         st.JournalCorruptFrames,
			"last_fsync_age_seconds": st.JournalLastFsyncAgeSeconds,
		},
		"artifacts": map[string]any{
			"entries":           st.StoreEntries,
			"hits":              st.StoreHits,
			"corrupt_evictions": st.StoreCorruptEvicted,
		},
		"faults": map[string]any{
			"injected":      st.FaultsInjected,
			"io_retries":    st.IORetries,
			"io_recoveries": st.IORecoveries,
		},
		"peer": map[string]any{
			"hits":   st.PeerHits,
			"misses": st.PeerMisses,
			"served": st.PeerServed,
		},
		"stage_cache": st.StageCache,
	})
}

// handleMetrics serves GET /metrics in Prometheus text format:
// counters and gauges from the shared stats snapshot, plus the
// log-bucketed latency histograms (job duration, queue wait, per-stage
// duration).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := s.stats()
	gauge := func(name string, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name string, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("vpgad_requests_total", "HTTP requests received", st.ReqTotal)
	counter("vpgad_cache_hits_total", "submissions served from the content-addressed cache", st.CacheHits)
	counter("vpgad_cache_misses_total", "submissions that required a fresh job", st.CacheMisses)
	counter("vpgad_cache_evictions_total", "content-addressed cache entries evicted by the LRU bound", st.CacheEvictions)
	counter("vpgad_jobs_rejected_total", "submissions rejected by queue backpressure", st.Rejected)
	counter("vpgad_jobs_completed_total", "jobs that finished successfully", st.Completed)
	counter("vpgad_jobs_failed_total", "jobs that finished in error", st.Failed)
	counter("vpgad_jobs_timeout_total", "jobs that failed on their per-job wall-clock budget", st.Timeouts)
	counter("vpgad_ledger_records_total", "QoR records appended to the run ledger", st.LedgerRecords)
	counter("vpgad_ledger_errors_total", "run-ledger append failures", st.LedgerErrors)
	counter("vpgad_journal_appends_total", "job-journal entries appended", st.JournalAppends)
	counter("vpgad_journal_errors_total", "job-journal append failures", st.JournalErrors)
	counter("vpgad_journal_replayed_jobs_total", "incomplete jobs re-enqueued from the journal at startup", st.JournalReplayedJobs)
	counter("vpgad_journal_corrupt_frames_total", "torn journal frames discarded at startup", st.JournalCorruptFrames)
	counter("vpgad_store_hits_total", "artifact-store reads that verified and decoded", st.StoreHits)
	counter("vpgad_store_corrupt_evictions_total", "artifact-store entries evicted on checksum failure", st.StoreCorruptEvicted)
	counter("vpgad_faults_injected_total", "faults fired by the injection harness", st.FaultsInjected)
	counter("vpgad_io_retries_total", "transient I/O re-attempts", st.IORetries)
	counter("vpgad_io_recoveries_total", "transient I/O failures that recovered on retry", st.IORecoveries)
	counter("vpgad_peer_hits_total", "submissions served from a peer node's cache", st.PeerHits)
	counter("vpgad_peer_misses_total", "peer-cache lookups that missed or failed to decode", st.PeerMisses)
	counter("vpgad_peer_served_total", "cache lookups this node answered for peers", st.PeerServed)
	gauge("vpgad_store_entries", "live artifact-store entries", st.StoreEntries)
	gauge("vpgad_jobs_running", "jobs executing right now", st.JobsRunning)
	gauge("vpgad_queue_depth", "jobs queued but not yet running", int64(st.QueueDepth))
	gauge("vpgad_queue_capacity", "queue bound before 429 backpressure", int64(st.QueueCapacity))
	gauge("vpgad_workers", "worker pool size", int64(st.Workers))
	gauge("vpgad_cache_entries", "live content-addressed cache entries", int64(st.CacheEntries))
	// Stage-granular build-cache counters, labeled by stage. Emitted
	// only once a stage has been resolved (Prometheus treats an absent
	// series as zero).
	if len(st.StageCache) > 0 {
		fmt.Fprintf(w, "# HELP vpgad_stage_cache_hits_total flow stages satisfied from the stage-granular build cache\n# TYPE vpgad_stage_cache_hits_total counter\n")
		for _, stage := range st.StageCache.Stages() {
			fmt.Fprintf(w, "vpgad_stage_cache_hits_total{stage=%q} %d\n", stage, st.StageCache[stage].Hits)
		}
		fmt.Fprintf(w, "# HELP vpgad_stage_cache_misses_total flow stages recomputed despite the stage-granular build cache\n# TYPE vpgad_stage_cache_misses_total counter\n")
		for _, stage := range st.StageCache.Stages() {
			fmt.Fprintf(w, "vpgad_stage_cache_misses_total{stage=%q} %d\n", stage, st.StageCache[stage].Misses)
		}
	}
	fmt.Fprintf(w, "# HELP vpgad_uptime_seconds seconds since the daemon started\n# TYPE vpgad_uptime_seconds gauge\nvpgad_uptime_seconds %s\n",
		strconv.FormatFloat(st.UptimeSeconds, 'f', 3, 64))
	s.jobDur.write(w, "vpgad_job_duration_seconds", "wall-clock job execution time")
	s.queueWait.write(w, "vpgad_job_queue_wait_seconds", "time from submission to a worker picking the job up")
	s.stageDur.write(w, "vpgad_stage_duration_seconds", "per-flow-stage wall-clock time across all jobs")
}

// handleEvents serves GET /v1/runs/{id}/events: the job's telemetry as
// a Server-Sent Events stream — run/stage/attempt boundaries as they
// happen, so an in-flight matrix is observable before it completes.
// The stream replays the job's full event history first (connecting
// late loses nothing), then follows live until the job finishes (a
// final "done" event carries the terminal status) or the client
// disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown or evicted job id"))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(evs []obs.Event) {
		for _, ev := range evs {
			enc, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, enc)
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
	}
	cursor := 0
	for {
		evs := j.tracer.EventsSince(cursor)
		cursor += len(evs)
		emit(evs)
		select {
		case <-j.done:
			// Drain anything published between the last poll and
			// completion, then close the stream with the terminal status.
			evs := j.tracer.EventsSince(cursor)
			emit(evs)
			resp := j.response()
			fmt.Fprintf(w, "event: done\ndata: {\"status\":%q}\n\n", resp.Status)
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		case <-j.tracer.Wait(cursor):
		}
	}
}
