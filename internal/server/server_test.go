package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"vpga/internal/core"
	"vpga/internal/qor"
)

// postJSON submits body to path on ts and decodes the jobResponse.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, jobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return resp, jr
}

// reportOf re-marshals a jobResponse's result into a core.Report.
func reportOf(t *testing.T, jr jobResponse) *core.Report {
	t.Helper()
	enc, err := json.Marshal(jr.Result)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	var rep core.Report
	if err := json.Unmarshal(enc, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	return &rep
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

const runBody = `{"design":"alu","arch":{"kind":"granular"},"flow":"b","seed":7}`

// TestRunCacheHit is the acceptance property: a repeated identical
// POST /v1/runs is served from the content-addressed cache with a
// report byte-identical (after StripMetrics) to the first run.
func TestRunCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	resp1, jr1 := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if resp1.StatusCode != http.StatusOK || jr1.Status != "done" {
		t.Fatalf("first run: status %d, job %q (err %q)", resp1.StatusCode, jr1.Status, jr1.Error)
	}
	if jr1.Cached {
		t.Fatal("first run claims cached")
	}
	resp2, jr2 := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if resp2.StatusCode != http.StatusOK || !jr2.Cached {
		t.Fatalf("second run: status %d, cached=%v", resp2.StatusCode, jr2.Cached)
	}
	if jr1.Key == "" || jr1.Key != jr2.Key {
		t.Fatalf("cache keys differ: %q vs %q", jr1.Key, jr2.Key)
	}

	fresh, cached := reportOf(t, jr1), reportOf(t, jr2)
	fresh.StripMetrics()
	cached.StripMetrics() // no-op on a correctly stripped cache entry
	b1, _ := json.Marshal(fresh)
	b2, _ := json.Marshal(cached)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached report differs from fresh run:\nfresh:  %s\ncached: %s", b1, b2)
	}
	if s.cacheHits.Load() != 1 || s.cacheMisses.Load() != 1 {
		t.Fatalf("hit/miss counters: %d/%d", s.cacheHits.Load(), s.cacheMisses.Load())
	}
}

// TestRunFieldOrderIndependence: the same request with reordered JSON
// fields and spelled-out defaults hits the same cache entry.
func TestRunFieldOrderIndependence(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	_, jr1 := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr1.Status != "done" {
		t.Fatalf("first run failed: %q", jr1.Error)
	}
	reordered := `{"seed":7,"flow":"b","scale":"test","place_effort":6,"arch":{"kind":"granular"},"design":"alu"}`
	_, jr2 := postJSON(t, ts, "/v1/runs?wait=1", reordered)
	if !jr2.Cached {
		t.Fatalf("reordered request missed the cache (keys %q vs %q)", jr1.Key, jr2.Key)
	}
}

// TestQueueBackpressure: when every worker is busy and the queue is
// full, a further submission gets 429 + Retry-After instead of
// blocking.
func TestQueueBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1,
		testJobStart: func(j *job) {
			started <- j.id
			<-release
		},
	})
	defer close(release)

	body := func(seed int) string {
		return fmt.Sprintf(`{"design":"alu","arch":{"kind":"granular"},"seed":%d}`, seed)
	}
	// Job 1 occupies the single worker (wait until it holds the gate).
	resp, jr := postJSON(t, ts, "/v1/runs", body(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never started")
	}
	// Job 2 fills the queue.
	if resp, _ = postJSON(t, ts, "/v1/runs", body(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", resp.StatusCode)
	}
	// Job 3 must bounce with explicit backpressure.
	resp, jr = postJSON(t, ts, "/v1/runs", body(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if jr.Error == "" {
		t.Fatal("429 without an error message")
	}
	if s.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d", s.rejected.Load())
	}
}

// TestStatusAndTrace: async submission, poll to completion, fetch the
// Chrome trace.
func TestStatusAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	resp, jr := postJSON(t, ts, "/v1/runs", `{"design":"alu","arch":{"kind":"lut"},"seed":3}`)
	if resp.StatusCode != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, jr.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	var st jobResponse
	for {
		r2, err := http.Get(ts.URL + "/v1/runs/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r2.Body).Decode(&st)
		r2.Body.Close()
		if st.Status == "done" || st.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.Status != "done" {
		t.Fatalf("job failed: %s (stage %s)", st.Error, st.Stage)
	}
	tr, err := http.Get(ts.URL + "/v1/runs/" + jr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(tr.Body).Decode(&events); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	stages := 0
	for _, ev := range events {
		if ev["cat"] == "stage" {
			stages++
		}
	}
	if stages == 0 {
		t.Fatalf("trace has no stage spans (%d events)", len(events))
	}
}

// TestInvalidRequests: malformed and semantically invalid submissions
// are 400s, unknown jobs 404s.
func TestInvalidRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, tc := range []struct{ path, body string }{
		{"/v1/runs", `{"design":"alu","unknown_field":1}`},
		{"/v1/runs", `{"design":"no-such-design"}`},
		{"/v1/runs", `{"design":"alu","arch":{"kind":"bogus"}}`},
		{"/v1/runs", `{"design":"alu","rtl":"also-rtl"}`},
		{"/v1/runs", `{"design":"alu","defect_rate":1.5}`},
		{"/v1/matrix", `{"scale":"huge"}`},
		{"/v1/sweeps/routing", `{"design":"alu","capacities":[0]}`},
	} {
		resp, jr := postJSON(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
		if jr.Error == "" {
			t.Errorf("%s %s: 400 without error message", tc.path, tc.body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/runs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestSweepEndpointsAndCache: both sweep endpoints complete and are
// served from cache on identical resubmission.
func TestSweepEndpointsAndCache(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})

	gran := `{"design":"alu","seed":5,"archs":[{"kind":"lut"},{"kind":"granular"}]}`
	_, jr := postJSON(t, ts, "/v1/sweeps/granularity?wait=1", gran)
	if jr.Status != "done" {
		t.Fatalf("granularity sweep failed: %s", jr.Error)
	}
	_, again := postJSON(t, ts, "/v1/sweeps/granularity?wait=1", gran)
	if !again.Cached {
		t.Fatal("granularity sweep resubmission missed the cache")
	}
	b1, _ := json.Marshal(jr.Result)
	b2, _ := json.Marshal(again.Result)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached sweep differs:\nfresh:  %s\ncached: %s", b1, b2)
	}

	routing := `{"design":"alu","seed":5,"arch":{"kind":"granular"},"capacities":[4,16]}`
	_, jr = postJSON(t, ts, "/v1/sweeps/routing?wait=1", routing)
	if jr.Status != "done" {
		t.Fatalf("routing sweep failed: %s", jr.Error)
	}
	if _, again = postJSON(t, ts, "/v1/sweeps/routing?wait=1", routing); !again.Cached {
		t.Fatal("routing sweep resubmission missed the cache")
	}
}

// TestMatrixEndpointCached: a matrix over the TestSuite completes with
// tables + claims, and an identical resubmission — even at a different
// parallel width — serves the byte-identical payload from cache.
func TestMatrixEndpointCached(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	ledger := filepath.Join(t.TempDir(), "ledger.jsonl")
	_, ts := newTestServer(t, Options{Workers: 4, LedgerPath: ledger})

	_, jr := postJSON(t, ts, "/v1/matrix?wait=1", `{"seed":1,"parallel":4}`)
	if jr.Status != "done" {
		t.Fatalf("matrix failed: %s", jr.Error)
	}
	var res MatrixResult
	enc, _ := json.Marshal(jr.Result)
	if err := json.Unmarshal(enc, &res); err != nil {
		t.Fatal(err)
	}
	if res.Table1 == "" || res.Table2 == "" || res.Claims == nil {
		t.Fatal("complete matrix missing tables or claims")
	}
	// Different parallel width, same content address.
	_, again := postJSON(t, ts, "/v1/matrix?wait=1", `{"seed":1,"parallel":1}`)
	if !again.Cached {
		t.Fatal("matrix resubmission missed the cache")
	}
	b1, _ := json.Marshal(jr.Result)
	b2, _ := json.Marshal(again.Result)
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached matrix payload differs from fresh payload")
	}
	// Every matrix cell landed in the run ledger (matrix cells are not
	// request-shaped, so they carry no cache key).
	recs, err := qor.Read(ledger)
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	if len(recs) != 16 {
		t.Fatalf("matrix appended %d ledger records, want 16", len(recs))
	}
	for _, rec := range recs {
		if rec.Key != "" || rec.Bench == "" || rec.DelayPS <= 0 {
			t.Fatalf("matrix ledger record malformed: %+v", rec)
		}
	}
}

// TestLRUBound: the cache never exceeds its capacity and evicts the
// least recently used entry first.
func TestLRUBound(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	c.get("a") // refresh a; b is now LRU
	c.put("c", 3)
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was evicted despite refresh")
	}
}

// TestGracefulShutdown: draining finishes queued work, rejects new
// submissions with 503, and Shutdown returns.
func TestGracefulShutdown(t *testing.T) {
	s, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr.Status != "done" {
		t.Fatalf("run failed: %s", jr.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	// A cached request still answers during drain — no work needed.
	resp, hit := postJSON(t, ts, "/v1/runs", runBody)
	if resp.StatusCode != http.StatusOK || !hit.Cached {
		t.Fatalf("post-drain cached request: status %d cached=%v, want 200 from cache", resp.StatusCode, hit.Cached)
	}
	// New work is refused.
	resp, _ = postJSON(t, ts, "/v1/runs", `{"design":"alu","seed":404}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submission: status %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", hz.StatusCode)
	}
}

// TestJobRetention: completed job records beyond JobsKeep are evicted
// oldest-first, while their results stay cached.
func TestJobRetention(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8, JobsKeep: 1})

	_, jr1 := postJSON(t, ts, "/v1/runs?wait=1", `{"design":"alu","seed":21}`)
	if jr1.Status != "done" {
		t.Fatalf("run 1 failed: %s", jr1.Error)
	}
	_, jr2 := postJSON(t, ts, "/v1/runs?wait=1", `{"design":"alu","seed":22}`)
	if jr2.Status != "done" {
		t.Fatalf("run 2 failed: %s", jr2.Error)
	}
	resp, _ := http.Get(ts.URL + "/v1/runs/" + jr1.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job 1: status %d, want 404", resp.StatusCode)
	}
	// The result survives eviction through the content-addressed cache.
	_, hit := postJSON(t, ts, "/v1/runs?wait=1", `{"design":"alu","seed":21}`)
	if !hit.Cached {
		t.Fatal("evicted job's result fell out of the cache")
	}
	if s.cache.len() < 2 {
		t.Fatalf("cache entries %d, want >= 2", s.cache.len())
	}
}

// TestMetricsEndpoint: the Prometheus text exposition carries the
// daemon's counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	postJSON(t, ts, "/v1/runs?wait=1", runBody)
	postJSON(t, ts, "/v1/runs?wait=1", runBody)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"vpgad_requests_total", "vpgad_cache_hits_total 1", "vpgad_cache_misses_total 1",
		"vpgad_jobs_completed_total 1", "vpgad_queue_capacity", "vpgad_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestRepairRunOverHTTP: a defect-injecting request runs through the
// repair ladder and reports its attempt ledger.
func TestRepairRunOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := `{"design":"alu","arch":{"kind":"granular"},"seed":9,"defect_rate":0.02,"defect_seed":101}`
	_, jr := postJSON(t, ts, "/v1/runs?wait=1", body)
	if jr.Status != "done" {
		t.Fatalf("repair run failed: %s (stage %s)", jr.Error, jr.Stage)
	}
	rep := reportOf(t, jr)
	if rep.DefectSummary == "" {
		t.Fatal("repair run report has no defect summary")
	}
	if len(rep.Attempts) == 0 {
		t.Fatal("repair run report has no attempt ledger")
	}
	if _, jr2 := postJSON(t, ts, "/v1/runs?wait=1", body); !jr2.Cached {
		t.Fatal("repair run resubmission missed the cache")
	}
}

// TestHealthzMetricsAgree: /healthz and /metrics render the same
// shared stats snapshot — the stable figures must agree between the
// two surfaces.
func TestHealthzMetricsAgree(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, QueueDepth: 5})
	if _, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody); jr.Status != "done" {
		t.Fatalf("run failed: %s", jr.Error)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(hz.Body).Decode(&health)
	hz.Body.Close()
	text := metricsText(t, ts)
	for metric, key := range map[string]string{
		"vpgad_workers":        "workers",
		"vpgad_queue_capacity": "queue_capacity",
		"vpgad_queue_depth":    "queue_depth",
		"vpgad_jobs_running":   "jobs_running",
		"vpgad_cache_entries":  "cache_entries",
	} {
		got, ok := metricValue(text, metric)
		if !ok {
			t.Fatalf("metrics missing %s:\n%s", metric, text)
		}
		want, ok := health[key].(float64)
		if !ok {
			t.Fatalf("healthz missing %q: %v", key, health)
		}
		if got != want {
			t.Errorf("%s = %g but healthz %s = %g", metric, got, key, want)
		}
	}
}

// metricsText fetches /metrics.
func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// metricValue finds a plain (unlabeled) sample in Prometheus text.
func metricValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

// TestMetricsHistograms: after a completed job, /metrics exposes
// well-formed Prometheus histograms — a full le-ordered cumulative
// _bucket ladder ending at +Inf, with _sum and _count agreeing.
func TestMetricsHistograms(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if _, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody); jr.Status != "done" {
		t.Fatalf("run failed: %s", jr.Error)
	}
	text := metricsText(t, ts)

	for _, name := range []string{"vpgad_job_duration_seconds", "vpgad_job_queue_wait_seconds"} {
		if !strings.Contains(text, "# TYPE "+name+" histogram") {
			t.Fatalf("%s not declared as histogram:\n%s", name, text)
		}
		var buckets []float64
		inf := false
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, name+"_bucket{le=") {
				continue
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			buckets = append(buckets, v)
			if strings.Contains(line, `le="+Inf"`) {
				inf = true
			}
		}
		if len(buckets) != 21 || !inf {
			t.Fatalf("%s: %d bucket lines (inf=%v), want 21 ending at +Inf", name, len(buckets), inf)
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Fatalf("%s buckets not cumulative: %v", name, buckets)
			}
		}
		count, ok := metricValue(text, name+"_count")
		if !ok || count != 1 {
			t.Fatalf("%s_count = %g (found=%v), want 1", name, count, ok)
		}
		if buckets[len(buckets)-1] != count {
			t.Fatalf("%s +Inf bucket %g != count %g", name, buckets[len(buckets)-1], count)
		}
		if !strings.Contains(text, name+"_sum ") {
			t.Fatalf("%s_sum missing", name)
		}
	}
	// The per-stage family carries the stage label.
	for _, want := range []string{
		"# TYPE vpgad_stage_duration_seconds histogram",
		`vpgad_stage_duration_seconds_bucket{stage="place",le="+Inf"}`,
		`vpgad_stage_duration_seconds_count{stage="route"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("stage histogram missing %q:\n%s", want, text)
		}
	}
}

// TestEventsSSE: GET /v1/runs/{id}/events streams the job's telemetry
// live. The stream is attached while the job is held before producing
// any events, so every event read below arrived over the open
// connection, not from a replay of a finished job.
func TestEventsSSE(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 1,
		testJobStart: func(j *job) {
			started <- struct{}{}
			<-release
		},
	})
	resp, jr := postJSON(t, ts, "/v1/runs", runBody)
	if resp.StatusCode != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, jr.ID)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	es, err := http.Get(ts.URL + "/v1/runs/" + jr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if es.StatusCode != http.StatusOK || !strings.HasPrefix(es.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("stream: status %d content-type %q", es.StatusCode, es.Header.Get("Content-Type"))
	}
	close(release)

	types := map[string]int{}
	var lastData string
	sc := bufio.NewScanner(es.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
		if !strings.HasPrefix(line, "event: ") {
			continue
		}
		typ := strings.TrimPrefix(line, "event: ")
		types[typ]++
		if typ == "done" {
			// Its data line follows; read it, then stop.
			for sc.Scan() {
				if d := sc.Text(); strings.HasPrefix(d, "data: ") {
					lastData = strings.TrimPrefix(d, "data: ")
					break
				}
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if types["run_start"] == 0 || types["stage_start"] == 0 || types["stage_end"] == 0 {
		t.Fatalf("stream missing stage events: %v", types)
	}
	if types["done"] != 1 || !strings.Contains(lastData, `"done"`) {
		t.Fatalf("stream did not close with terminal status: %v, last data %q", types, lastData)
	}
	// An unknown job is a 404, not an empty stream.
	nf, err := http.Get(ts.URL + "/v1/runs/j999999/events")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events: status %d, want 404", nf.StatusCode)
	}
}

// TestJobTimeoutCounter: a job that dies on its wall-clock budget
// counts on vpgad_jobs_timeout_total as well as jobs_failed_total.
func TestJobTimeoutCounter(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, JobTimeout: time.Nanosecond})
	_, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr.Status != "failed" {
		t.Fatalf("job with 1ns budget finished %q", jr.Status)
	}
	if s.failed.Load() != 1 || s.timeouts.Load() != 1 {
		t.Fatalf("failed/timeout counters: %d/%d, want 1/1", s.failed.Load(), s.timeouts.Load())
	}
	if v, ok := metricValue(metricsText(t, ts), "vpgad_jobs_timeout_total"); !ok || v != 1 {
		t.Fatalf("vpgad_jobs_timeout_total = %g (found=%v), want 1", v, ok)
	}
}

// TestCacheEvictionCounter: LRU capacity evictions surface on
// vpgad_cache_evictions_total.
func TestCacheEvictionCounter(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, CacheSize: 1})
	for seed := 31; seed <= 32; seed++ {
		body := fmt.Sprintf(`{"design":"alu","seed":%d}`, seed)
		if _, jr := postJSON(t, ts, "/v1/runs?wait=1", body); jr.Status != "done" {
			t.Fatalf("seed %d failed: %s", seed, jr.Error)
		}
	}
	if s.cache.evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.cache.evictions())
	}
	if v, ok := metricValue(metricsText(t, ts), "vpgad_cache_evictions_total"); !ok || v != 1 {
		t.Fatalf("vpgad_cache_evictions_total = %g (found=%v), want 1", v, ok)
	}
}

// TestRunLedgerAppend: with LedgerPath set, each completed run appends
// one QoR record carrying the request's cache key; cache hits do not
// append, and append failures count without failing the job.
func TestRunLedgerAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	s, ts := newTestServer(t, Options{Workers: 1, LedgerPath: path})

	_, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr.Status != "done" {
		t.Fatalf("run failed: %s", jr.Error)
	}
	recs, err := qor.Read(path)
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("ledger has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Bench != "alu" || rec.Seed != 7 || rec.Key != jr.Key {
		t.Fatalf("record identity wrong: %+v (key want %q)", rec, jr.Key)
	}
	if rec.DelayPS <= 0 || rec.Time == "" || rec.StageSeconds == nil {
		t.Fatalf("record incomplete: %+v", rec)
	}
	if s.ledgerRecords.Load() != 1 || s.ledgerErrors.Load() != 0 {
		t.Fatalf("ledger counters: %d/%d", s.ledgerRecords.Load(), s.ledgerErrors.Load())
	}
	// A cache hit runs no job, so nothing more is appended.
	if _, hit := postJSON(t, ts, "/v1/runs?wait=1", runBody); !hit.Cached {
		t.Fatal("resubmission missed the cache")
	}
	if recs, _ = qor.Read(path); len(recs) != 1 {
		t.Fatalf("cache hit appended to the ledger: %d records", len(recs))
	}

	// An unwritable ledger path counts an error and leaves the job done.
	blocked := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocked, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Options{Workers: 1,
		LedgerPath: filepath.Join(blocked, "ledger.jsonl")})
	if _, jr := postJSON(t, ts2, "/v1/runs?wait=1", runBody); jr.Status != "done" {
		t.Fatalf("run with broken ledger failed: %s", jr.Error)
	}
	if s2.ledgerErrors.Load() != 1 || s2.ledgerRecords.Load() != 0 {
		t.Fatalf("broken-ledger counters: %d errors / %d records",
			s2.ledgerErrors.Load(), s2.ledgerRecords.Load())
	}
}

// TestRetryAfterHint pins the backpressure hint rule: ceil(backlog /
// workers) rounds of the observed median job duration, clamped to
// [1s, 120s] — so a deep queue of slow jobs hints long, an empty
// queue hints the 1s floor, and no history floors at 1s too.
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		depth, workers int
		median         float64
		want           int
	}{
		{0, 4, 10, 1},      // empty queue: floor
		{8, 4, 10, 20},     // two rounds of 10s
		{3, 2, 0.5, 1},     // sub-second jobs: floor
		{1000, 1, 60, 120}, // clamp
		{5, 0, 2, 10},      // workers floor at 1
		{4, 4, 0, 1},       // no duration history yet
	}
	for _, c := range cases {
		if got := retryAfterHint(c.depth, c.workers, c.median); got != c.want {
			t.Errorf("retryAfterHint(%d, %d, %v) = %d, want %d", c.depth, c.workers, c.median, got, c.want)
		}
	}
}

// TestRetryAfterTracksBacklog is the satellite regression: the 429
// Retry-After header scales with the actual backlog and observed job
// durations instead of a hardcoded constant — a deep queue of slow
// jobs hints strictly longer than an empty one.
func TestRetryAfterTracksBacklog(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1,
		testJobStart: func(*job) {
			started <- struct{}{}
			<-release
		},
	})
	defer close(release)

	// The server has observed slow jobs (median ~30s).
	s.jobDur.observe(30)
	emptyHint := s.retryAfterSeconds()
	if emptyHint != 1 {
		t.Fatalf("empty-queue hint %d, want the 1s floor", emptyHint)
	}

	body := func(seed int) string {
		return fmt.Sprintf(`{"design":"alu","arch":{"kind":"granular"},"seed":%d}`, seed)
	}
	if resp, _ := postJSON(t, ts, "/v1/runs", body(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never started")
	}
	if resp, _ := postJSON(t, ts, "/v1/runs", body(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", resp.StatusCode)
	}
	resp, _ := postJSON(t, ts, "/v1/runs", body(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", resp.StatusCode)
	}
	deepHint, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	// Backlog of 2 (1 running + 1 queued) over 1 worker at a ~30s
	// median: the hint must reflect the real wait, not the old
	// hardcoded 2 seconds.
	if deepHint <= 2 || deepHint <= emptyHint {
		t.Fatalf("deep-queue hint %d does not exceed the empty-queue hint %d (or the old constant 2)",
			deepHint, emptyHint)
	}
	if deepHint > 120 {
		t.Fatalf("hint %d above the clamp", deepHint)
	}
}
