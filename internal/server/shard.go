package server

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// ring is the cluster's consistent-hash ring: content-addressed cache
// keys map to worker nodes through virtual-node points, so adding or
// removing one node remaps only ~1/N of the key space instead of
// reshuffling every key. Every node derives the same ring from the
// same membership list — "who owns key K" has one cluster-wide answer,
// which is what makes a single peer-cache lookup (instead of a
// broadcast) sufficient.
type ring struct {
	mu     sync.RWMutex
	vnodes int
	live   map[string]bool
	points []ringPoint // points of live members, sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// defaultVNodes spreads each member over enough points that key load
// stays within a few percent of uniform at small cluster sizes.
const defaultVNodes = 64

// newRing builds a ring over the members, all initially live.
func newRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{vnodes: vnodes, live: make(map[string]bool, len(members))}
	for _, m := range members {
		r.live[m] = true
	}
	r.rebuild()
	return r
}

// rebuild regenerates the sorted point list from the live members.
// Callers hold r.mu.
func (r *ring) rebuild() {
	r.points = r.points[:0]
	for m, up := range r.live {
		if !up {
			continue
		}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(m + "#" + strconv.Itoa(i)), node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so every replica
		// of the ring agrees.
		return r.points[i].node < r.points[j].node
	})
}

// owner maps a key to its live owner ("" when no member is live).
func (r *ring) owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}

// setLive marks a member up or down, rebuilding the point list; it
// reports whether the state actually changed.
func (r *ring) setLive(member string, up bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, known := r.live[member]
	if !known || cur == up {
		return false
	}
	r.live[member] = up
	r.rebuild()
	return true
}

// liveMembers returns the live members, sorted.
func (r *ring) liveMembers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for m, up := range r.live {
		if up {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// ringHash is FNV-1a 64: stdlib, stable across processes and builds —
// the ring must hash identically on every node.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
