package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestRunStageKeysInStatus: run-job status JSON carries the request's
// per-stage key chain, matching what the request derives itself.
func TestRunStageKeysInStatus(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, DataDir: t.TempDir()})
	_, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody)
	if jr.Status != "done" {
		t.Fatalf("run failed: %s", jr.Error)
	}
	want := []string{"map", "compact", "place", "pack", "route"}
	if len(jr.StageKeys) != len(want) {
		t.Fatalf("stage_keys %v, want stages %v", jr.StageKeys, want)
	}
	for i, sk := range jr.StageKeys {
		if sk.Stage != want[i] || len(sk.Key) != 64 {
			t.Fatalf("stage_keys[%d] = %+v, want stage %q with a sha256 key", i, sk, want[i])
		}
	}
}

// stageCounters parses the labeled stage-cache counters out of
// Prometheus text.
func stageCounters(text, name string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+`{stage="`)
		if !ok {
			continue
		}
		stage, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(val, "%g", &v); err == nil {
			out[stage] = v
		}
	}
	return out
}

// TestStageCacheMetrics: the daemon counts per-stage cache traffic —
// a cold run misses every stage, and a routing-only variant of the
// same request restores everything up to routing without recomputing
// placement. The counters are the CI stage-cache job's oracle.
func TestStageCacheMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, DataDir: t.TempDir()})
	if _, jr := postJSON(t, ts, "/v1/runs?wait=1", runBody); jr.Status != "done" {
		t.Fatalf("cold run failed: %s", jr.Error)
	}
	text := metricsText(t, ts)
	misses := stageCounters(text, "vpgad_stage_cache_misses_total")
	for _, stage := range []string{"map", "compact", "place", "pack", "route"} {
		if misses[stage] != 1 {
			t.Fatalf("cold run: %s misses = %g, want 1 (metrics:\n%s)", stage, misses[stage], text)
		}
	}

	// A clock retarget is a different request (no report-cache hit) that
	// shares the chain through placement.
	retarget := strings.Replace(runBody, `"seed":7`, `"seed":7,"clock_period":9000`, 1)
	if retarget == runBody {
		t.Fatal("retarget body mutation did not apply")
	}
	if _, jr := postJSON(t, ts, "/v1/runs?wait=1", retarget); jr.Status != "done" {
		t.Fatalf("retarget run failed: %s", jr.Error)
	}
	text = metricsText(t, ts)
	hits := stageCounters(text, "vpgad_stage_cache_hits_total")
	misses = stageCounters(text, "vpgad_stage_cache_misses_total")
	for _, stage := range []string{"map", "compact", "place"} {
		if hits[stage] != 1 {
			t.Fatalf("retarget: %s hits = %g, want 1 (metrics:\n%s)", stage, hits[stage], text)
		}
	}
	if misses["place"] != 1 {
		t.Fatalf("retarget recomputed placement: place misses = %g, want 1", misses["place"])
	}
	if misses["route"] != 2 || hits["route"] != 0 {
		t.Fatalf("route counters hits=%g misses=%g, want 0/2", hits["route"], misses["route"])
	}

	// /healthz renders the same counters.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health struct {
		StageCache map[string]struct {
			Hits   float64 `json:"hits"`
			Misses float64 `json:"misses"`
		} `json:"stage_cache"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	for stage, want := range hits {
		if got := health.StageCache[stage].Hits; got != want {
			t.Fatalf("healthz stage_cache[%s].hits = %g, metrics say %g", stage, got, want)
		}
	}
	for stage, want := range misses {
		if got := health.StageCache[stage].Misses; got != want {
			t.Fatalf("healthz stage_cache[%s].misses = %g, metrics say %g", stage, got, want)
		}
	}
}
