package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// getTrace fetches and decodes a merged (or worker-local) Chrome
// trace-event array.
func getTrace(t *testing.T, url string) []traceEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var events []traceEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	return events
}

// TestTraceHeaderRoundTrip: a worker submission carrying X-Vpga-Trace
// adopts the coordinator's trace ID — echoed in the job envelope and
// stamped on the job's Chrome trace fragment — and a cache hit under a
// new trace echoes the new trace, not the one that computed it.
func TestTraceHeaderRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	post := func(trace string) jobResponse {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/runs?wait=1",
			jsonBody(`{"design":"alu","seed":3,"place_effort":2}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TraceHeader, trace)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		return jr
	}

	jr := post("deadbeef01234567:alu/lut-plb/flow b")
	if jr.Status != "done" || jr.TraceID != "deadbeef01234567" {
		t.Fatalf("traced run: status %q trace_id %q", jr.Status, jr.TraceID)
	}
	events := getTrace(t, ts.URL+"/v1/runs/"+jr.ID+"/trace")
	var stamped bool
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if ev.Args["trace_id"] != "deadbeef01234567" {
				t.Fatalf("fragment process args = %v", ev.Args)
			}
			stamped = true
		}
	}
	if !stamped {
		t.Fatal("fragment has no process_name metadata")
	}

	// The same request under a different trace is a cache hit that
	// belongs to the new trace.
	again := post("feedface89abcdef")
	if !again.Cached || again.TraceID != "feedface89abcdef" {
		t.Fatalf("cached resubmission: cached=%v trace_id=%q", again.Cached, again.TraceID)
	}
}

// TestRequestIDEchoAndMint: every response carries X-Request-ID —
// echoed when the client sent one, minted otherwise — and error
// envelopes embed it for log correlation.
func TestRequestIDEchoAndMint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/nosuch", nil)
	req.Header.Set(RequestIDHeader, "req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "req-42" {
		t.Fatalf("echoed request id = %q, want req-42", got)
	}
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Status != "rejected" || jr.RequestID != "req-42" {
		t.Fatalf("error envelope = %+v, want request_id req-42", jr)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if minted := resp2.Header.Get(RequestIDHeader); len(minted) != 16 {
		t.Fatalf("minted request id = %q, want 16 hex chars", minted)
	}
}

// TestClusterStatusEndpoint: GET /v1/cluster/status reports every
// node with its dispatch counters after work has flowed.
func TestClusterStatusEndpoint(t *testing.T) {
	workers := newWorkerFleet(t, 2)
	_, ts := newTestCoordinator(t, CoordinatorOptions{Workers: workers})
	if _, jr := postJSONURL(t, ts.URL+"/v1/runs?wait=1", `{"design":"alu","seed":3,"place_effort":2}`); jr.Status != "done" {
		t.Fatalf("run through coordinator: %+v", jr)
	}

	resp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Role    string            `json:"role"`
		NodesUp int               `json:"nodes_up"`
		Nodes   []clusterNodeStat `json:"nodes"`
		Cluster struct {
			Tickets int64 `json:"tickets"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "coordinator" || len(st.Nodes) != 2 || st.NodesUp != 2 {
		t.Fatalf("cluster status = %+v", st)
	}
	if st.Cluster.Tickets < 1 {
		t.Fatal("no tickets recorded in cluster status")
	}
	var dispatched int64
	for _, n := range st.Nodes {
		dispatched += n.Dispatched
		if n.InFlightTickets != 0 {
			t.Fatalf("idle cluster reports in-flight tickets: %+v", n)
		}
	}
	if dispatched < 1 {
		t.Fatal("no node reports a dispatched ticket")
	}
}

// TestMergedClusterTrace is the tentpole acceptance: a matrix through
// a 2-worker cluster yields ONE merged Chrome trace — coordinator
// scheduling spans on pid 0, each worker's tickets and per-stage
// fragments on its own process row — under a single trace ID.
func TestMergedClusterTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	workers := newWorkerFleet(t, 2)
	_, ts := newTestCoordinator(t, CoordinatorOptions{Workers: workers})
	code, jr := httpJSON(t, "POST", ts.URL+"/v1/matrix?wait=1", `{"seed":5,"place_effort":2,"parallel":2}`)
	if code != http.StatusOK || jr.Status != "done" {
		t.Fatalf("matrix: status %d job %q (%s)", code, jr.Status, jr.Error)
	}

	var env jobResponse
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.TraceID == "" {
		t.Fatal("coordinator job has no trace_id")
	}

	events := getTrace(t, ts.URL+"/v1/jobs/"+jr.ID+"/trace")
	traceIDs := map[any]bool{}
	coordSpans := map[string]bool{}
	ticketPids := map[int]bool{}
	stagePids := map[int]bool{}
	for _, ev := range events {
		if id, ok := ev.Args["trace_id"]; ok {
			traceIDs[id] = true
		}
		switch {
		case ev.Cat == "coordinator" && ev.Ph == "X":
			if ev.Pid != 0 {
				t.Fatalf("coordinator span %q on pid %d", ev.Name, ev.Pid)
			}
			coordSpans[ev.Name] = true
		case ev.Cat == "ticket":
			if ev.Pid == 0 {
				t.Fatalf("ticket span %q on the coordinator row", ev.Name)
			}
			ticketPids[ev.Pid] = true
		case ev.Cat == "stage":
			stagePids[ev.Pid] = true
		}
	}
	if len(traceIDs) != 1 || !traceIDs[env.TraceID] {
		t.Fatalf("trace IDs in merged trace = %v, want exactly {%q}", traceIDs, env.TraceID)
	}
	if !coordSpans["job matrix"] || !coordSpans["merge"] {
		t.Fatalf("coordinator spans = %v, want job matrix + merge", coordSpans)
	}
	if len(ticketPids) < 2 {
		t.Fatalf("ticket spans on %d worker rows, want both workers", len(ticketPids))
	}
	if len(stagePids) < 2 {
		t.Fatalf("stage fragments from %d workers, want both", len(stagePids))
	}
	for pid := range stagePids {
		if !ticketPids[pid] {
			t.Fatalf("stage fragment on pid %d has no ticket span row", pid)
		}
	}
}

// postJSONURL is postJSON against a raw URL (coordinator tests hold
// the httptest server, not always in scope).
func postJSONURL(t *testing.T, url, body string) (*http.Response, jobResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", jsonBody(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp, jr
}

func jsonBody(s string) io.Reader { return strings.NewReader(s) }
