package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Distributed trace context. The coordinator mints one trace ID per
// client-visible job and stamps every ticket it ships with it; workers
// thread the ID into their per-job obs.Tracer. GET /v1/jobs/{id}/trace
// on the coordinator then re-assembles the scattered execution into
// one Chrome trace-event timeline: the coordinator's own control spans
// (job, merge, steal, reshard) on one process row, and each worker
// node's tickets — with the per-stage fragments fetched back from the
// worker — on a process row of its own.

// TraceHeader carries the trace context on every coordinator->worker
// hop: "<trace_id>" or "<trace_id>:<parent_span>".
const TraceHeader = "X-Vpga-Trace"

// RequestIDHeader correlates client retries across the fleet: handlers
// echo an incoming X-Request-ID (or mint one) on the response and in
// error envelopes.
const RequestIDHeader = "X-Request-ID"

// newTraceID mints a 16-hex-digit random ID (also used for request
// IDs). crypto/rand never fails on supported platforms; if it ever
// does, a time-derived fallback keeps IDs unique enough to correlate.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// parseTraceHeader splits the header into (trace ID, parent span).
func parseTraceHeader(r *http.Request) (id, parent string) {
	v := r.Header.Get(TraceHeader)
	if v == "" {
		return "", ""
	}
	if i := strings.IndexByte(v, ':'); i >= 0 {
		return v[:i], v[i+1:]
	}
	return v, ""
}

// ensureRequestID echoes the request's X-Request-ID on the response,
// minting one when the client sent none, and returns it. Runs before
// mux dispatch so every handler — including error paths — sees the
// header already set on the ResponseWriter.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" {
		id = newTraceID()
	}
	w.Header().Set(RequestIDHeader, id)
	return id
}

// responseRequestID reads back the ID ensureRequestID stamped, so
// writeError can echo it without threading it through every handler.
func responseRequestID(w http.ResponseWriter) string {
	return w.Header().Get(RequestIDHeader)
}

// ---------------------------------------------------------------------------
// Coordinator-side trace recording.

// ctrlSpan is one coordinator control span (job, merge).
type ctrlSpan struct {
	name       string
	start, end time.Duration
	args       map[string]any
}

// ctrlInstant is one coordinator instant event (steal, reshard,
// node down/up).
type ctrlInstant struct {
	name string
	at   time.Duration
	args map[string]any
}

// ticketRecord is the coordinator's view of one resolved ticket: which
// node ran it, over what window of the job timeline, and the worker
// job ID its trace fragment lives under ("" for peer-cache hits and
// failures — no fragment to fetch).
type ticketRecord struct {
	name      string
	node      string
	workerJob string
	start     time.Duration
	end       time.Duration
	cached    bool
	stolen    bool
	attempts  int
	err       string
}

// jobTrace records a coordinator job's distributed execution. Nil is
// valid and records nothing (mirroring the obs package's nil-tolerant
// tracer), so untraced paths stay free.
type jobTrace struct {
	traceID string
	epoch   time.Time

	mu       sync.Mutex
	spans    []ctrlSpan
	instants []ctrlInstant
	tickets  []ticketRecord
}

func newJobTrace(traceID string) *jobTrace {
	return &jobTrace{traceID: traceID, epoch: time.Now()}
}

func (t *jobTrace) since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// span opens a named control span; the returned closure ends it.
func (t *jobTrace) span(name string, args map[string]any) func() {
	if t == nil {
		return func() {}
	}
	start := t.since()
	return func() {
		t.mu.Lock()
		t.spans = append(t.spans, ctrlSpan{name: name, start: start, end: t.since(), args: args})
		t.mu.Unlock()
	}
}

// instant records a point event on the control row.
func (t *jobTrace) instant(name string, args map[string]any) {
	if t == nil {
		return
	}
	at := t.since()
	t.mu.Lock()
	t.instants = append(t.instants, ctrlInstant{name: name, at: at, args: args})
	t.mu.Unlock()
}

// ticket records one resolved ticket.
func (t *jobTrace) ticket(rec ticketRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tickets = append(t.tickets, rec)
	t.mu.Unlock()
}

// snapshot copies the trace under the lock.
func (t *jobTrace) snapshot() (spans []ctrlSpan, instants []ctrlInstant, tickets []ticketRecord) {
	if t == nil {
		return nil, nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]ctrlSpan(nil), t.spans...),
		append([]ctrlInstant(nil), t.instants...),
		append([]ticketRecord(nil), t.tickets...)
}

// ---------------------------------------------------------------------------
// Merged Chrome trace assembly.

// traceEvent mirrors the Chrome trace-event JSON entry the obs package
// emits, re-declared here because merging happens over the wire: the
// coordinator decodes worker fragments from JSON, it never holds their
// tracers.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func durUS(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// assignLanes packs a node's tickets onto the fewest rows: tickets are
// sorted by start and each takes the lowest lane whose previous
// occupant already ended (interval partitioning). Sequential execution
// collapses to one row per node; concurrency fans out exactly as wide
// as it ran. Returns the per-ticket lane, parallel to the input.
func assignLanes(tickets []ticketRecord) []int {
	order := make([]int, len(tickets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tickets[order[a]].start < tickets[order[b]].start
	})
	lanes := make([]int, len(tickets))
	var laneEnd []time.Duration
	for _, i := range order {
		t := tickets[i]
		lane := -1
		for l, end := range laneEnd {
			if end <= t.start {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = t.end
		lanes[i] = lane
	}
	return lanes
}

// mergedTrace assembles the job's cluster-wide Chrome trace: pid 0 is
// the coordinator (control spans and instants on tid 0), pid i+1 is
// worker node order[i] with its tickets packed onto lanes and — for
// tickets whose node still answers — the worker's per-stage trace
// fragment nested inside the ticket span, timestamps shifted from the
// worker job's epoch onto the coordinator job's timeline. A dead
// node's fragments are simply absent: its ticket spans (recorded
// coordinator-side) still show what it ran before dying.
func (c *Coordinator) mergedTrace(ctx context.Context, j *cjob) []traceEvent {
	spans, instants, tickets := j.trace.snapshot()
	traceID := j.traceID

	var events []traceEvent
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "coordinator", "trace_id": traceID},
	})
	events = append(events, traceEvent{
		Name: "thread_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "control"},
	})

	// Stable node -> pid mapping from configuration order; only nodes
	// that actually ran (or cached) a ticket get a process row.
	nodePid := map[string]int{}
	used := map[string]bool{}
	for _, t := range tickets {
		used[t.node] = true
	}
	for i, base := range c.order {
		if !used[base] {
			continue
		}
		pid := i + 1
		nodePid[base] = pid
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "worker " + base, "trace_id": traceID},
		})
	}

	for _, s := range spans {
		events = append(events, traceEvent{
			Name: s.name, Cat: "coordinator", Ph: "X",
			Ts: durUS(s.start), Dur: durUS(s.end - s.start), Pid: 0, Tid: 0,
			Args: s.args,
		})
	}
	for _, in := range instants {
		events = append(events, traceEvent{
			Name: in.name, Cat: "coordinator", Ph: "i",
			Ts: durUS(in.at), Pid: 0, Tid: 0, S: "p",
			Args: in.args,
		})
	}

	// Group tickets per node, pack lanes, emit ticket spans and fetch
	// fragments.
	byNode := map[string][]ticketRecord{}
	for _, t := range tickets {
		byNode[t.node] = append(byNode[t.node], t)
	}
	for node, recs := range byNode {
		pid, ok := nodePid[node]
		if !ok {
			continue // node not in configuration (cannot happen in practice)
		}
		lanes := assignLanes(recs)
		maxLane := 0
		for _, l := range lanes {
			if l > maxLane {
				maxLane = l
			}
		}
		for l := 0; l <= maxLane; l++ {
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: l,
				Args: map[string]any{"name": fmt.Sprintf("lane %d", l)},
			})
		}
		n := c.nodes[node]
		for i, rec := range recs {
			args := map[string]any{"trace_id": traceID}
			if rec.workerJob != "" {
				args["worker_job"] = rec.workerJob
			}
			if rec.cached {
				args["cached"] = true
			}
			if rec.stolen {
				args["stolen"] = true
			}
			if rec.attempts > 0 {
				args["attempts"] = rec.attempts
			}
			if rec.err != "" {
				args["error"] = rec.err
			}
			events = append(events, traceEvent{
				Name: rec.name, Cat: "ticket", Ph: "X",
				Ts: durUS(rec.start), Dur: durUS(rec.end - rec.start),
				Pid: pid, Tid: lanes[i], Args: args,
			})
			if rec.workerJob == "" || n == nil || n.down.Load() {
				continue
			}
			frag, ok := n.traceFragment(ctx, rec.workerJob)
			if !ok {
				continue
			}
			// The fragment's epoch is the worker job's creation — within
			// transit latency of the ticket's dispatch — so shifting by the
			// ticket's start lands every fragment span inside its ticket.
			for _, fe := range frag {
				if fe.Ph == "M" {
					continue // fragment row metadata; lanes replace it
				}
				fe.Pid = pid
				fe.Tid = lanes[i]
				fe.Ts += durUS(rec.start)
				if fe.Args == nil {
					fe.Args = map[string]any{}
				}
				fe.Args["ticket"] = rec.name
				events = append(events, fe)
			}
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if (events[i].Ph == "M") != (events[j].Ph == "M") {
			return events[i].Ph == "M"
		}
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Pid < events[j].Pid
	})
	return events
}
