// Package sta implements graph-based static timing analysis over a
// netlist of configuration instances, with optional post-layout wire
// parasitics from the router (the paper measures "final performance
// ... by running static timing analysis ... with data from post-layout
// extraction", Sec. 3.1). It reports the Table 2 metric: the average
// slack over the top-10 critical paths.
package sta

import (
	"fmt"
	"sort"

	"vpga/internal/cells"
	"vpga/internal/netlist"
	"vpga/internal/place"
	"vpga/internal/route"
)

// SetupPS is the flip-flop setup time (ps).
const SetupPS = 50

// unconstrained is the required-time sentinel seeding the backward
// pass: a node still holding it after propagation has no timing
// constraint in its fanout cone. Comparisons use unconstrained/10 as
// the threshold so accumulated subtractions along a path cannot slip a
// genuinely unconstrained node under an exact equality check.
const unconstrained = 1e18

// Options configures the analysis.
type Options struct {
	// ClockPeriod is the timing target in ps.
	ClockPeriod float64
	// TopK is the number of worst endpoint slacks to report (default
	// 10, matching the paper's "Path Slack 1-10").
	TopK int
}

// PathElem is one stage of a reported critical path.
type PathElem struct {
	Node    netlist.NodeID
	Type    string
	Arrival float64
}

// Report is the analysis outcome.
type Report struct {
	// WorstSlack is min over all endpoints (ps).
	WorstSlack float64
	// TopSlacks lists the TopK worst endpoint slacks, worst first.
	TopSlacks []float64
	// AvgTopSlack averages TopSlacks — the Table 2 comparison metric.
	AvgTopSlack float64
	// MaxArrival is the longest path delay (ps).
	MaxArrival float64
	// CriticalPath walks the worst path, startpoint first.
	CriticalPath []PathElem
	// Arrival and Slack are per-node values (indexed by NodeID).
	Arrival []float64
	Slack   []float64
}

// timingParams resolves delay parameters for a node type.
type timingParams struct {
	intrinsic, drive, inputCap float64
}

func params(arch *cells.PLBArch, typ string) (timingParams, bool) {
	if cfg := arch.Config(typ); cfg != nil {
		return timingParams{cfg.Intrinsic, cfg.Drive, cfg.InputCap}, true
	}
	if c := arch.Library().Cell(typ); c != nil {
		return timingParams{c.Intrinsic, c.Drive, c.InputCap}, true
	}
	return timingParams{}, false
}

// Analyze runs STA. prob and routes may be nil for pre-layout timing
// (zero wire parasitics); when given, wire RC is taken from the routed
// trees.
func Analyze(nl *netlist.Netlist, arch *cells.PLBArch, prob *place.Problem, routes *route.Result, opts Options) (*Report, error) {
	if opts.TopK == 0 {
		opts.TopK = 10
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}

	// Map driver node -> (net index, sink object index -> position).
	type netRef struct {
		idx  int
		sink map[int32]int
	}
	netOf := map[netlist.NodeID]netRef{}
	if prob != nil && routes != nil {
		for ni := range prob.Nets {
			n := &prob.Nets[ni]
			ref := netRef{idx: ni, sink: map[int32]int{}}
			for k, oi := range n.Objs[1:] {
				ref.sink[oi] = k
			}
			driver := n.Objs[0]
			for _, nodeID := range prob.Objs[driver].Nodes {
				netOf[nodeID] = ref
			}
		}
	}

	// wireDelayCap returns the wire delay from driver node f to sink
	// node g and the driver's total wire capacitance.
	wireDelayCap := func(f, g netlist.NodeID) (float64, float64) {
		if prob == nil || routes == nil {
			return 0, 0
		}
		ref, ok := netOf[f]
		if !ok {
			return 0, 0
		}
		sinkObj := prob.ObjIndex(g)
		if sinkObj < 0 {
			return 0, routes.NetCap(ref.idx)
		}
		k, ok := ref.sink[sinkObj]
		if !ok {
			// Same placement object (e.g. inside an FA macro): no wire.
			return 0, routes.NetCap(ref.idx)
		}
		d, c := routes.WireRC(ref.idx, k)
		return d, c
	}

	// Load capacitance per driver: sink pin caps + wire cap.
	loadOf := func(id netlist.NodeID) float64 {
		total := 0.0
		for _, out := range nl.Fanouts(id) {
			n := nl.Node(out)
			switch n.Kind {
			case netlist.KindGate, netlist.KindDFF:
				if p, ok := params(arch, n.Type); ok {
					total += p.inputCap
				} else {
					total += 2
				}
			case netlist.KindOutput:
				total += 4 // pad load
			}
		}
		if prob != nil && routes != nil {
			if ref, ok := netOf[id]; ok {
				total += routes.NetCap(ref.idx)
			}
		}
		return total
	}

	arrival := make([]float64, nl.NumNodes())
	worstFanin := make([]netlist.NodeID, nl.NumNodes())
	for i := range worstFanin {
		worstFanin[i] = netlist.Nil
	}
	for _, id := range order {
		n := nl.Node(id)
		switch n.Kind {
		case netlist.KindInput, netlist.KindConst:
			arrival[id] = 0
		case netlist.KindDFF:
			// Launch: clk→q plus load-dependent drive.
			p, _ := params(arch, "FF")
			if p.intrinsic == 0 {
				p = timingParams{80, 2.5, 2.0}
			}
			arrival[id] = p.intrinsic + p.drive*loadOf(id)
		case netlist.KindGate:
			p, ok := params(arch, n.Type)
			if !ok {
				return nil, fmt.Errorf("sta: no timing for type %q", n.Type)
			}
			worst := 0.0
			for _, f := range n.Fanins {
				wd, _ := wireDelayCap(f, id)
				if a := arrival[f] + wd; a > worst {
					worst = a
					worstFanin[id] = f
				}
			}
			arrival[id] = worst + p.intrinsic + p.drive*loadOf(id)
		case netlist.KindOutput:
			wd, _ := wireDelayCap(n.Fanins[0], id)
			arrival[id] = arrival[n.Fanins[0]] + wd
			worstFanin[id] = n.Fanins[0]
		}
	}

	// Endpoints: PO pads and DFF D pins. An endpoint whose data cone
	// contains no timed element — a pad fed straight from a primary
	// input or constant, a register latching one, or a fanin-less node —
	// carries no meaningful constraint: its "slack" is just the clock
	// period, and letting it into the top-K pool dilutes AvgTopSlack
	// with astronomically optimistic figures.
	type endpoint struct {
		id           netlist.NodeID
		arrival      float64
		slack        float64
		noConstraint bool
	}
	passthrough := func(n *netlist.Node) bool {
		if len(n.Fanins) == 0 {
			return true
		}
		src := nl.Node(n.Fanins[0])
		return src.Kind == netlist.KindInput || src.Kind == netlist.KindConst
	}
	var eps []endpoint
	maxArr := 0.0
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindOutput:
			if len(n.Fanins) == 0 {
				eps = append(eps, endpoint{id: n.ID, slack: opts.ClockPeriod, noConstraint: true})
				continue
			}
			a := arrival[n.ID]
			eps = append(eps, endpoint{n.ID, a, opts.ClockPeriod - a, passthrough(n)})
			if a > maxArr {
				maxArr = a
			}
		case netlist.KindDFF:
			if len(n.Fanins) == 0 {
				eps = append(eps, endpoint{id: n.ID, slack: opts.ClockPeriod - SetupPS, noConstraint: true})
				continue
			}
			f := n.Fanins[0]
			wd, _ := wireDelayCap(f, n.ID)
			a := arrival[f] + wd
			eps = append(eps, endpoint{n.ID, a, opts.ClockPeriod - SetupPS - a, passthrough(n)})
			if a > maxArr {
				maxArr = a
			}
		}
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("sta: netlist %s has no timing endpoints", nl.Name)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].slack < eps[j].slack })

	// Top-K selection over constrained endpoints only; a netlist with
	// nothing but passthrough endpoints falls back to the full set so
	// the report still carries a slack figure.
	sel := eps[:0:0]
	for _, ep := range eps {
		if !ep.noConstraint {
			sel = append(sel, ep)
		}
	}
	if len(sel) == 0 {
		sel = eps
	}

	rep := &Report{MaxArrival: maxArr, Arrival: arrival}
	k := opts.TopK
	if k > len(sel) {
		k = len(sel)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		rep.TopSlacks = append(rep.TopSlacks, sel[i].slack)
		sum += sel[i].slack
	}
	rep.WorstSlack = sel[0].slack
	rep.AvgTopSlack = sum / float64(k)

	// Per-node slack by backward propagation of required times, seeded
	// with the named sentinel (not a bare magic number) so nodes whose
	// fanout cone reaches no endpoint are recognizable below.
	required := make([]float64, nl.NumNodes())
	for i := range required {
		required[i] = unconstrained
	}
	for _, ep := range eps {
		n := nl.Node(ep.id)
		req := opts.ClockPeriod
		if n.Kind == netlist.KindDFF {
			req -= SetupPS
		}
		// The endpoint constraint applies to the data it samples.
		if n.Kind == netlist.KindOutput || n.Kind == netlist.KindDFF {
			if req < required[ep.id] {
				required[ep.id] = req
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		n := nl.Node(id)
		switch n.Kind {
		case netlist.KindOutput, netlist.KindDFF:
			if len(n.Fanins) == 0 {
				continue
			}
			for _, f := range n.Fanins {
				wd, _ := wireDelayCap(f, id)
				if r := required[id] - wd; r < required[f] {
					required[f] = r
				}
			}
		case netlist.KindGate:
			p, _ := params(arch, n.Type)
			stage := p.intrinsic + p.drive*loadOf(id)
			for _, f := range n.Fanins {
				wd, _ := wireDelayCap(f, id)
				if r := required[id] - stage - wd; r < required[f] {
					required[f] = r
				}
			}
		}
	}
	rep.Slack = make([]float64, nl.NumNodes())
	for _, n := range nl.Nodes() {
		if required[n.ID] >= unconstrained/10 {
			rep.Slack[n.ID] = opts.ClockPeriod
			continue
		}
		rep.Slack[n.ID] = required[n.ID] - arrival[n.ID]
	}

	// Critical path walk from the worst constrained endpoint.
	cur := sel[0].id
	var path []PathElem
	for cur != netlist.Nil {
		n := nl.Node(cur)
		path = append(path, PathElem{Node: cur, Type: n.Type, Arrival: arrival[cur]})
		if n.Kind == netlist.KindDFF && len(path) > 1 {
			break // crossed into the launching register
		}
		next := worstFanin[cur]
		if next == netlist.Nil && n.Kind == netlist.KindDFF && len(n.Fanins) > 0 {
			next = n.Fanins[0]
		}
		cur = next
	}
	// Reverse: startpoint first.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	rep.CriticalPath = path
	return rep, nil
}

// NetWeights derives placement net weights from per-node slacks:
// critical nets (slack near or below zero) get weight up to maxW.
func NetWeights(nl *netlist.Netlist, prob *place.Problem, rep *Report, clock float64, maxW float64) []float64 {
	w := make([]float64, len(prob.Nets))
	for ni := range prob.Nets {
		driverObj := prob.Nets[ni].Objs[0]
		worst := clock
		for _, nodeID := range prob.Objs[driverObj].Nodes {
			if s := rep.Slack[nodeID]; s < worst {
				worst = s
			}
		}
		crit := 1 - worst/clock
		if crit < 0 {
			crit = 0
		}
		if crit > 1 {
			crit = 1
		}
		w[ni] = 1 + (maxW-1)*crit
	}
	return w
}

// ObjCriticality derives per-object criticality for the packer.
func ObjCriticality(nl *netlist.Netlist, prob *place.Problem, rep *Report, clock float64) []float64 {
	out := make([]float64, len(prob.Objs))
	for i := range prob.Objs {
		worst := clock
		for _, nodeID := range prob.Objs[i].Nodes {
			if s := rep.Slack[nodeID]; s < worst {
				worst = s
			}
		}
		crit := 1 - worst/clock
		if crit < 0 {
			crit = 0
		}
		out[i] = crit
	}
	return out
}
