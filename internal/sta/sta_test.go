package sta

import (
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/compact"
	"vpga/internal/logic"
	"vpga/internal/netlist"
	"vpga/internal/place"
	"vpga/internal/route"
	"vpga/internal/rtl"
	"vpga/internal/techmap"
)

// chainNetlist builds PI -> k ND3 stages -> FF -> PO using config
// types directly.
func chainNetlist(k int) *netlist.Netlist {
	nl := netlist.New("chain")
	a := nl.AddInput("a")
	cur := a
	for i := 0; i < k; i++ {
		cur = nl.AddGate("ND3", logic.TTNand2.Extend(3), cur, cur, cur)
	}
	ff := nl.AddDFF("r", cur)
	nl.AddOutput("y", ff)
	return nl
}

func TestChainArrival(t *testing.T) {
	arch := cells.GranularPLB()
	nl := chainNetlist(3)
	rep, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Each ND3 stage: 40 intrinsic + 2.5 drive × load. A stage feeding
	// the next ND3 drives all three of its input pins (3 × 2.5 fF =
	// 7.5 fF → 18.75 ps); the last stage feeds the FF (2.0 fF → 5 ps).
	want := 2*(40+2.5*7.5) + (40 + 2.5*2.0)
	ep := rep.MaxArrival
	if diff := ep - want; diff < -0.01 || diff > 0.01 {
		t.Fatalf("arrival = %v, want %v", ep, want)
	}
	// Slack at the FF endpoint = clock - setup - arrival.
	wantSlack := 1000 - SetupPS - want
	if diff := rep.WorstSlack - wantSlack; diff < -0.01 || diff > 0.01 {
		t.Fatalf("slack = %v, want %v", rep.WorstSlack, wantSlack)
	}
}

func TestFFLaunchDelay(t *testing.T) {
	arch := cells.GranularPLB()
	nl := netlist.New("ff2ff")
	a := nl.AddInput("a")
	ff1 := nl.AddDFF("r1", a)
	g := nl.AddGate("MX", logic.VarTT(1, 0), ff1)
	ff2 := nl.AddDFF("r2", g)
	nl.AddOutput("y", ff2)
	rep, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Launch 80 + 2.5×(MX cap 2.0) = 85; MX stage 50 + 2.5×2.0 = 55.
	want := 85.0 + 55.0
	if d := rep.MaxArrival - want; d < -0.01 || d > 0.01 {
		t.Fatalf("reg-to-reg arrival = %v, want %v", rep.MaxArrival, want)
	}
}

func TestTopKAveraging(t *testing.T) {
	arch := cells.GranularPLB()
	// Parallel chains of different depth give distinct endpoint slacks.
	nl := netlist.New("multi")
	a := nl.AddInput("a")
	for i := 0; i < 12; i++ {
		cur := a
		for j := 0; j <= i; j++ {
			cur = nl.AddGate("ND3", logic.TTNand2.Extend(3), cur, cur, cur)
		}
		nl.AddOutput(nodeName("y", i), cur)
	}
	rep, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopSlacks) != 10 {
		t.Fatalf("TopSlacks = %d entries, want 10", len(rep.TopSlacks))
	}
	for i := 1; i < len(rep.TopSlacks); i++ {
		if rep.TopSlacks[i] < rep.TopSlacks[i-1] {
			t.Fatal("TopSlacks not sorted worst-first")
		}
	}
	if rep.TopSlacks[0] != rep.WorstSlack {
		t.Fatal("WorstSlack mismatch")
	}
	sum := 0.0
	for _, s := range rep.TopSlacks {
		sum += s
	}
	if d := rep.AvgTopSlack - sum/10; d < -1e-9 || d > 1e-9 {
		t.Fatal("AvgTopSlack mismatch")
	}
}

func nodeName(base string, i int) string {
	return base + string(rune('a'+i))
}

func TestCriticalPathWalk(t *testing.T) {
	arch := cells.GranularPLB()
	nl := chainNetlist(4)
	rep, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CriticalPath) < 5 {
		t.Fatalf("critical path too short: %v", rep.CriticalPath)
	}
	// Arrivals must be non-decreasing along the path.
	for i := 1; i < len(rep.CriticalPath); i++ {
		if rep.CriticalPath[i].Arrival < rep.CriticalPath[i-1].Arrival-1e9 {
			t.Fatal("critical path arrivals decrease")
		}
	}
}

func TestPostLayoutTimingIsSlower(t *testing.T) {
	arch := cells.GranularPLB()
	src := `
module m(input clk, input [7:0] a, input [7:0] b, output [7:0] y);
  reg [7:0] r;
  always r <= a + b;
  assign y = r;
endmodule`
	nlr, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nlr)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(2)
	mapped, err := techmap.Map(d, arch, techmap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := compact.Run(mapped.Netlist, arch)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := place.Build(cres.Netlist, place.ArchArea(arch), place.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	prob.Anneal(place.Options{Seed: 31, MovesPerObj: 4})
	routes, err := route.Route(prob, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Analyze(cres.Netlist, arch, nil, nil, Options{ClockPeriod: 2000})
	if err != nil {
		t.Fatal(err)
	}
	post, err := Analyze(cres.Netlist, arch, prob, routes, Options{ClockPeriod: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if post.MaxArrival < pre.MaxArrival {
		t.Fatalf("post-layout arrival %v faster than pre-layout %v", post.MaxArrival, pre.MaxArrival)
	}
	if post.MaxArrival == pre.MaxArrival {
		t.Log("warning: wire parasitics added nothing (tiny design)")
	}
}

func TestNetWeightsAndCriticality(t *testing.T) {
	arch := cells.GranularPLB()
	nl := chainNetlist(6)
	prob, err := place.Build(nl, place.ArchArea(arch), place.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 400})
	if err != nil {
		t.Fatal(err)
	}
	ws := NetWeights(nl, prob, rep, 400, 5)
	if len(ws) != len(prob.Nets) {
		t.Fatal("weight vector length mismatch")
	}
	for _, w := range ws {
		if w < 1 || w > 5 {
			t.Fatalf("weight %v outside [1,5]", w)
		}
	}
	crit := ObjCriticality(nl, prob, rep, 400)
	for _, c := range crit {
		if c < 0 || c > 1+1e9 {
			t.Fatalf("criticality %v outside [0,1]", c)
		}
	}
}

// Endpoints with no timed element in their data cone (passthrough
// PI→PO pads) must not dilute the top-K slack pool with their
// clock-period "slacks".
func TestUnconstrainedEndpointFiltered(t *testing.T) {
	arch := cells.GranularPLB()
	nl := netlist.New("passthrough")
	a := nl.AddInput("a")
	// One real path: 3 ND3 stages to a PO.
	cur := a
	for i := 0; i < 3; i++ {
		cur = nl.AddGate("ND3", logic.TTNand2.Extend(3), cur, cur, cur)
	}
	nl.AddOutput("y", cur)
	// Nine passthrough pads wired straight to the input: before the fix
	// these flooded the top-10 pool with slack == clock period.
	for i := 0; i < 9; i++ {
		nl.AddOutput(nodeName("p", i), a)
	}
	rep, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopSlacks) != 1 {
		t.Fatalf("TopSlacks has %d entries, want only the constrained endpoint", len(rep.TopSlacks))
	}
	if d := rep.AvgTopSlack - rep.WorstSlack; d < -1e-9 || d > 1e-9 {
		t.Fatalf("AvgTopSlack %v != the single constrained slack %v", rep.AvgTopSlack, rep.WorstSlack)
	}
	// The constrained endpoint's slack is well under the clock period;
	// an unfiltered average would sit near 2000.
	if rep.AvgTopSlack > 1950 {
		t.Fatalf("AvgTopSlack %v still diluted by unconstrained endpoints", rep.AvgTopSlack)
	}

	// A netlist with only passthrough endpoints falls back to the full
	// set instead of failing.
	nl2 := netlist.New("allpass")
	b := nl2.AddInput("b")
	nl2.AddOutput("q", b)
	rep2, err := Analyze(nl2, arch, nil, nil, Options{ClockPeriod: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.TopSlacks) != 1 || rep2.AvgTopSlack != 500 {
		t.Fatalf("all-passthrough fallback: %+v", rep2)
	}

	// A register latching a primary input is equally unconstrained.
	nl3 := netlist.New("ffpass")
	c := nl3.AddInput("c")
	ff := nl3.AddDFF("r", c)
	g := nl3.AddGate("ND3", logic.TTNand2.Extend(3), ff, ff, ff)
	nl3.AddOutput("z", g)
	rep3, err := Analyze(nl3, arch, nil, nil, Options{ClockPeriod: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.TopSlacks) != 1 {
		t.Fatalf("FF-passthrough not filtered: %d top slacks", len(rep3.TopSlacks))
	}
}

func TestNoEndpointsError(t *testing.T) {
	arch := cells.GranularPLB()
	nl := netlist.New("empty")
	nl.AddInput("a")
	if _, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 100}); err == nil {
		t.Fatal("expected error for netlist without endpoints")
	}
}

func TestRepeaterModelCapsWireDelay(t *testing.T) {
	// Build two identical one-gate designs; route them on dies of very
	// different size by scaling positions, and check the long wire's
	// delay grows linearly (repeated model), not quadratically.
	arch := cells.GranularPLB()
	mk := func() (*netlist.Netlist, *place.Problem) {
		nl := netlist.New("w")
		a := nl.AddInput("a")
		g := nl.AddGate("MX", logic.VarTT(1, 0), a)
		nl.AddOutput("y", g)
		prob, err := place.Build(nl, place.ArchArea(arch), place.Options{Seed: 1, OutlineW: 400, OutlineH: 400})
		if err != nil {
			t.Fatal(err)
		}
		return nl, prob
	}
	nl, prob := mk()
	// Stretch the gate to the far corner from the input pad.
	for i := range prob.Objs {
		if !prob.Objs[i].IsPad {
			prob.Objs[i].X, prob.Objs[i].Y = 395, 395
		}
	}
	routes, err := route.Route(prob, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(nl, arch, prob, routes, Options{ClockPeriod: 10000})
	if err != nil {
		t.Fatal(err)
	}
	// The ~790-unit route would be ~25 ns under pure Elmore
	// (0.008·L²); the repeated-wire model caps it near 2.4·L ≈ 1.9 ns.
	if rep.MaxArrival > 4000 {
		t.Fatalf("long-wire arrival %.0f ps: repeater model not applied", rep.MaxArrival)
	}
	if rep.MaxArrival < 500 {
		t.Fatalf("long-wire arrival %.0f ps implausibly fast", rep.MaxArrival)
	}
}

func TestSlackDifferencesClockInvariant(t *testing.T) {
	arch := cells.GranularPLB()
	nl := chainNetlist(4)
	a, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(nl, arch, nil, nil, Options{ClockPeriod: 2500})
	if err != nil {
		t.Fatal(err)
	}
	// Arrival-side quantities must be identical; slacks shift by the
	// clock delta.
	if a.MaxArrival != b.MaxArrival {
		t.Fatalf("arrival depends on clock: %v vs %v", a.MaxArrival, b.MaxArrival)
	}
	if d := (b.WorstSlack - a.WorstSlack) - 1500; d < -1e-9 || d > 1e-9 {
		t.Fatalf("slack did not shift by the clock delta: %v", b.WorstSlack-a.WorstSlack)
	}
}
