package techmap

import (
	"fmt"

	"vpga/internal/aig"
	"vpga/internal/logic"
	"vpga/internal/netlist"
)

// emit materializes the chosen covering as a gate-level netlist over
// the component library, re-attaching the sequential shell (flip-flops,
// port names) recorded in the Design.
func (m *Mapper) emit(d *aig.Design) (*Result, error) {
	g := m.g
	nl := netlist.New(d.Name)
	nodeOf := make([]netlist.NodeID, g.NumNodes())
	for i := range nodeOf {
		nodeOf[i] = netlist.Nil
	}

	// Inputs: design PIs then flip-flop Q outputs.
	pis := g.PIs()
	var ffIDs []netlist.NodeID
	for i, idx := range pis {
		if i < len(d.PINames) {
			nodeOf[idx] = nl.AddInput(d.PINames[i])
		} else {
			ff := nl.AddDFF(d.FFNames[i-len(d.PINames)], 0)
			nl.SetFanin(ff, 0, ff) // patched once the D cone is built
			nodeOf[idx] = ff
			ffIDs = append(ffIDs, ff)
		}
	}

	var constNode netlist.NodeID = netlist.Nil
	getConst := func(v bool) netlist.NodeID {
		if constNode == netlist.Nil {
			constNode = nl.AddConst(false)
		}
		if !v {
			return constNode
		}
		// Use an INV on const-0 for const-1 (rare).
		return nl.AddGate("INV", logic.VarTT(1, 0).Not(), constNode)
	}

	counts := map[string]int{}
	area := 0.0
	lib := m.arch.Library()

	var build func(n int) netlist.NodeID
	build = func(n int) netlist.NodeID {
		if nodeOf[n] != netlist.Nil {
			return nodeOf[n]
		}
		if n == 0 {
			id := getConst(false)
			nodeOf[n] = id
			return id
		}
		st := &m.state[n]
		if st.best <= 0 || st.best >= len(st.cuts) {
			panic(fmt.Sprintf("techmap: node %d has no covering choice", n))
		}
		c := &st.cuts[st.best]
		fanins := make([]netlist.NodeID, c.n)
		for i, l := range c.slice() {
			fanins[i] = build(int(l))
		}
		id := nl.AddGate(st.cell.Name, c.fn, fanins...)
		counts[st.cell.Name]++
		area += st.cell.Area
		nodeOf[n] = id
		return id
	}

	invCache := map[netlist.NodeID]netlist.NodeID{}
	invCell := lib.Cell("INV")
	resolve := func(l aig.Lit) netlist.NodeID {
		base := build(l.Node())
		if !l.Neg() {
			return base
		}
		if v, ok := invCache[base]; ok {
			return v
		}
		v := nl.AddGate("INV", logic.VarTT(1, 0).Not(), base)
		counts["INV"]++
		area += invCell.Area
		invCache[base] = v
		return v
	}

	for i, name := range d.PONames {
		nl.AddOutput(name, resolve(g.PO(i)))
	}
	for i, ff := range ffIDs {
		nl.SetFanin(ff, 0, resolve(g.PO(len(d.PONames)+i)))
	}
	area += float64(len(ffIDs)) * lib.Cell("DFF").Area

	nl.Sweep()
	nl.Compact()
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("techmap: emitted netlist invalid: %w", err)
	}

	depth := 0.0
	for i := 0; i < g.NumPOs(); i++ {
		if a := m.state[g.PO(i).Node()].arrival; a > depth {
			depth = a
		}
	}
	return &Result{Netlist: nl, Area: area, Depth: depth, CellCounts: counts}, nil
}
