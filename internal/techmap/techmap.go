// Package techmap implements cut-based technology mapping from the
// optimized AIG onto the restricted component library of a PLB
// architecture (the role Design Compiler plays in the paper's Figure 6
// flow). It enumerates priority cuts of up to three leaves per AND
// node, Boolean-matches each cut function against the via-configurable
// component cells, and covers the graph with a delay-oriented dynamic
// program followed by area-flow recovery passes.
package techmap

import (
	"fmt"
	"sort"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/logic"
	"vpga/internal/netlist"
)

// K is the cut size limit: PLB components compute functions of at most
// three inputs.
const K = 3

// maxCutsPerNode bounds the priority-cut list kept per node.
const maxCutsPerNode = 10

// Options tunes the mapper.
type Options struct {
	// AreaPasses is the number of area-recovery refinement passes after
	// the delay-oriented pass (default 2).
	AreaPasses int
}

// Result is a mapped design.
type Result struct {
	Netlist *netlist.Netlist
	// Area is the summed component cell area (NAND2 equivalents).
	Area float64
	// Depth is the worst-case intrinsic path delay estimate used by the
	// covering DP (ps, excluding wire loads).
	Depth float64
	// CellCounts tallies mapped instances by component type.
	CellCounts map[string]int
}

// matchTable is the 256-entry Boolean matching table: for every
// 3-input-normalized function, the cheapest component cell realizing
// it.
type matchTable struct {
	cell [256]*cells.Cell
}

func buildMatchTable(arch *cells.PLBArch) *matchTable {
	lib := arch.Library()
	// Components present in the architecture's slots (mapping targets),
	// excluding sequential cells.
	present := map[string]bool{}
	for _, s := range arch.Slots {
		present[s.Component] = true
	}
	var comps []*cells.Cell
	for _, c := range lib.Cells() {
		// Buffers and inverters are interconnect resources, not logic
		// mapping targets.
		if c.Name == "BUF" || c.Name == "INV" {
			continue
		}
		if present[c.Name] && !c.Seq {
			comps = append(comps, c)
		}
	}
	// Prefer faster, then smaller cells.
	sort.SliceStable(comps, func(i, j int) bool {
		if comps[i].Intrinsic != comps[j].Intrinsic {
			return comps[i].Intrinsic < comps[j].Intrinsic
		}
		return comps[i].Area < comps[j].Area
	})
	mt := &matchTable{}
	for bits := 0; bits < 256; bits++ {
		fn := logic.NewTT(3, uint64(bits))
		for _, c := range comps {
			if c.Implements(fn) {
				mt.cell[bits] = c
				break
			}
		}
	}
	return mt
}

func (mt *matchTable) match(fn logic.TT) *cells.Cell {
	return mt.cell[fn.Extend(3).Bits]
}

// cut is a set of at most K leaf node indexes, sorted.
type cut struct {
	leaves [K]int32
	n      int8
	fn     logic.TT // function of the root in terms of the leaves
}

func (c *cut) slice() []int32 { return c.leaves[:c.n] }

func mergeCuts(a, b *cut) (cut, bool) {
	var out cut
	i, j := 0, 0
	for i < int(a.n) || j < int(b.n) {
		if out.n == K {
			return cut{}, false
		}
		var v int32
		switch {
		case i == int(a.n):
			v = b.leaves[j]
			j++
		case j == int(b.n):
			v = a.leaves[i]
			i++
		case a.leaves[i] < b.leaves[j]:
			v = a.leaves[i]
			i++
		case a.leaves[i] > b.leaves[j]:
			v = b.leaves[j]
			j++
		default:
			v = a.leaves[i]
			i++
			j++
		}
		out.leaves[out.n] = v
		out.n++
	}
	return out, true
}

// cutFunc computes the function of literal l in terms of the cut
// leaves: leaf i is variable i.
func cutFunc(g *aig.AIG, l aig.Lit, c *cut) logic.TT {
	n := int(c.n)
	memo := map[int]logic.TT{}
	for i := 0; i < n; i++ {
		memo[int(c.leaves[i])] = logic.VarTT(n, i)
	}
	var eval func(node int) logic.TT
	eval = func(node int) logic.TT {
		if t, ok := memo[node]; ok {
			return t
		}
		if node == 0 {
			return logic.ConstTT(n, false)
		}
		if !g.IsAnd(node) {
			// A PI outside the leaf set: the cut does not actually cover
			// this cone — flagged by the caller via DependsOn checks.
			panic(fmt.Sprintf("techmap: cut of node misses PI %d", node))
		}
		f0, f1 := g.Fanins(node)
		a := eval(f0.Node())
		if f0.Neg() {
			a = a.Not()
		}
		b := eval(f1.Node())
		if f1.Neg() {
			b = b.Not()
		}
		t := a.And(b)
		memo[node] = t
		return t
	}
	t := eval(l.Node())
	if l.Neg() {
		t = t.Not()
	}
	return t
}

type nodeState struct {
	cuts     []cut
	arrival  float64 // best arrival under current covering choice
	best     int     // index of chosen cut in cuts
	cell     *cells.Cell
	areaFlow float64
	nRefs    float64 // estimated fanout refs for area flow
}

// Mapper carries the covering state.
type Mapper struct {
	g     *aig.AIG
	arch  *cells.PLBArch
	mt    *matchTable
	state []nodeState
	opts  Options
}

// Map covers the design's AIG with component cells of the architecture
// and rebuilds a gate-level netlist including the sequential shell.
func Map(d *aig.Design, arch *cells.PLBArch, opts Options) (*Result, error) {
	if opts.AreaPasses == 0 {
		opts.AreaPasses = 2
	}
	m := &Mapper{g: d.G, arch: arch, mt: buildMatchTable(arch), opts: opts}
	m.state = make([]nodeState, d.G.NumNodes())
	m.estimateRefs()
	m.enumerateAndChoose(false)
	for p := 0; p < opts.AreaPasses; p++ {
		m.enumerateAndChoose(true)
	}
	return m.emit(d)
}

// estimateRefs seeds fanout estimates used by area flow.
func (m *Mapper) estimateRefs() {
	refs := make([]float64, m.g.NumNodes())
	for n := 1; n < m.g.NumNodes(); n++ {
		if !m.g.IsAnd(n) {
			continue
		}
		f0, f1 := m.g.Fanins(n)
		refs[f0.Node()]++
		refs[f1.Node()]++
	}
	for i := 0; i < m.g.NumPOs(); i++ {
		refs[m.g.PO(i).Node()]++
	}
	for n := range refs {
		if refs[n] < 1 {
			refs[n] = 1
		}
		m.state[n].nRefs = refs[n]
	}
}

// enumerateAndChoose runs one covering pass. In area mode the cut
// choice minimizes area flow subject to not worsening arrival beyond
// the global required time; otherwise it minimizes arrival.
func (m *Mapper) enumerateAndChoose(areaMode bool) {
	g := m.g
	for n := 0; n < g.NumNodes(); n++ {
		st := &m.state[n]
		if !g.IsAnd(n) {
			st.arrival = 0
			st.areaFlow = 0
			if len(st.cuts) == 0 {
				st.cuts = []cut{{leaves: [K]int32{int32(n)}, n: 1, fn: logic.VarTT(1, 0)}}
			}
			continue
		}
		if len(st.cuts) == 0 {
			m.buildCuts(n)
		}
		m.chooseCut(n, areaMode)
	}
}

func (m *Mapper) buildCuts(n int) {
	g := m.g
	f0, f1 := g.Fanins(n)
	s0, s1 := &m.state[f0.Node()], &m.state[f1.Node()]
	seen := map[[K]int32]bool{}
	var list []cut
	for i := range s0.cuts {
		for j := range s1.cuts {
			merged, ok := mergeCuts(&s0.cuts[i], &s1.cuts[j])
			if !ok {
				continue
			}
			if seen[merged.leaves] {
				continue
			}
			seen[merged.leaves] = true
			merged.fn = cutFunc(g, aig.MkLit(n, false), &merged)
			if m.mt.match(merged.fn) == nil {
				continue // no component implements this cut
			}
			list = append(list, merged)
		}
	}
	// The trivial fanin cut is always matchable (an AND with input
	// inversions); it is among the merged cuts of the fanins' self
	// cuts, so list is never empty here. Rank and truncate.
	sort.SliceStable(list, func(i, j int) bool {
		ai := m.cutArrival(&list[i])
		aj := m.cutArrival(&list[j])
		if ai != aj {
			return ai < aj
		}
		return list[i].n < list[j].n
	})
	if len(list) > maxCutsPerNode {
		list = list[:maxCutsPerNode]
	}
	// The self cut {n} is kept at index 0 so that consumers can merge
	// over n as a leaf; it is never a covering choice for n itself.
	self := cut{n: 1, fn: logic.VarTT(1, 0)}
	self.leaves[0] = int32(n)
	m.state[n].cuts = append([]cut{self}, list...)
}

func (m *Mapper) cutArrival(c *cut) float64 {
	cell := m.mt.match(c.fn)
	worst := 0.0
	for _, l := range c.slice() {
		if a := m.state[l].arrival; a > worst {
			worst = a
		}
	}
	return worst + cell.Intrinsic
}

func (m *Mapper) cutAreaFlow(c *cut) float64 {
	cell := m.mt.match(c.fn)
	af := cell.Area
	for _, l := range c.slice() {
		af += m.state[l].areaFlow / m.state[l].nRefs
	}
	return af
}

func (m *Mapper) chooseCut(n int, areaMode bool) {
	st := &m.state[n]
	bestIdx, bestArr, bestAF := -1, 0.0, 0.0
	// Index 0 is the self cut — usable by consumers, not a covering
	// choice for n itself.
	for i := 1; i < len(st.cuts); i++ {
		arr := m.cutArrival(&st.cuts[i])
		af := m.cutAreaFlow(&st.cuts[i])
		better := false
		if bestIdx < 0 {
			better = true
		} else if areaMode {
			// Allow small arrival slack in exchange for area.
			if af < bestAF-1e-9 && arr <= bestArr*1.10+1e-9 {
				better = true
			} else if arr < bestArr*0.90 {
				better = true
			}
		} else if arr < bestArr-1e-9 || (arr == bestArr && af < bestAF) {
			better = true
		}
		if better {
			bestIdx, bestArr, bestAF = i, arr, af
		}
	}
	st.best = bestIdx
	st.arrival = bestArr
	st.areaFlow = bestAF
	st.cell = m.mt.match(st.cuts[bestIdx].fn)
}
