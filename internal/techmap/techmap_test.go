package techmap

import (
	"testing"

	"vpga/internal/aig"
	"vpga/internal/cells"
	"vpga/internal/logic"
	"vpga/internal/netlist"
	"vpga/internal/rtl"
)

func mapSource(t *testing.T, src string, arch *cells.PLBArch) (*netlist.Netlist, *Result) {
	t.Helper()
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(3)
	res, err := Map(d, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nl, res
}

const aluSrc = `
module mini(input clk, input [3:0] a, input [3:0] b, input [1:0] op, output [3:0] y);
  wire [3:0] sum = a + b;
  wire [3:0] lg = op[0] ? (a & b) : (a ^ b);
  reg [3:0] r;
  always r <= op[1] ? sum : lg;
  assign y = r;
endmodule`

func TestMapEquivalenceBothArchs(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.LUTPLB(), cells.GranularPLB()} {
		ref, res := mapSource(t, aluSrc, arch)
		if err := netlist.Equivalent(ref, res.Netlist, 16, 8, 42); err != nil {
			t.Fatalf("%s: mapped netlist not equivalent: %v", arch.Name, err)
		}
	}
}

func TestMapUsesOnlyArchComponents(t *testing.T) {
	for _, arch := range []*cells.PLBArch{cells.LUTPLB(), cells.GranularPLB()} {
		allowed := map[string]bool{"INV": true, "BUF": true, "DFF": true}
		for _, s := range arch.Slots {
			allowed[s.Component] = true
		}
		_, res := mapSource(t, aluSrc, arch)
		for typ := range res.CellCounts {
			if !allowed[typ] {
				t.Errorf("%s: mapped to foreign cell %s", arch.Name, typ)
			}
		}
		for _, n := range res.Netlist.Nodes() {
			if n.Kind == netlist.KindGate && !allowed[n.Type] {
				t.Errorf("%s: netlist contains foreign gate %s", arch.Name, n.Type)
			}
		}
	}
}

func TestGranularAvoidsLUTs(t *testing.T) {
	_, res := mapSource(t, aluSrc, cells.GranularPLB())
	if res.CellCounts["LUT3"] != 0 {
		t.Errorf("granular mapping used %d LUTs", res.CellCounts["LUT3"])
	}
	if res.CellCounts["MUX2"]+res.CellCounts["XOA"] == 0 {
		t.Error("granular mapping used no MUXes for a design with XORs")
	}
}

func TestLUTArchUsesLUTsForXor(t *testing.T) {
	src := `
module x(input [2:0] a, output y);
  assign y = a[0] ^ a[1] ^ a[2];
endmodule`
	_, res := mapSource(t, src, cells.LUTPLB())
	if res.CellCounts["LUT3"] == 0 {
		t.Error("XOR3 should require a LUT in the LUT-based library")
	}
	_, res2 := mapSource(t, src, cells.GranularPLB())
	if res2.CellCounts["LUT3"] != 0 {
		t.Error("granular arch must not use LUTs")
	}
	// Same function must still be mappable: via MUXes.
	if res2.CellCounts["MUX2"]+res2.CellCounts["XOA"] < 2 {
		t.Errorf("XOR3 on granular should need at least two MUX stages: %v", res2.CellCounts)
	}
}

func TestMatchTable(t *testing.T) {
	mtG := buildMatchTable(cells.GranularPLB())
	mtL := buildMatchTable(cells.LUTPLB())
	// NAND3 matches ND3WI on both.
	if c := mtG.match(logic.TTNand3); c == nil || c.Name != "ND3WI" {
		t.Errorf("granular NAND3 match = %v", c)
	}
	if c := mtL.match(logic.TTNand3); c == nil || c.Name != "ND3WI" {
		t.Errorf("lut NAND3 match = %v", c)
	}
	// XOR2 matches a MUX on granular, the LUT on the LUT arch (ND3WI
	// cannot do it).
	x2 := logic.TTXor2.Extend(3)
	if c := mtG.match(x2); c == nil || (c.Name != "XOA" && c.Name != "MUX2") {
		t.Errorf("granular XOR2 match = %v", c)
	}
	if c := mtL.match(x2); c == nil || c.Name != "LUT3" {
		t.Errorf("lut XOR2 match = %v", c)
	}
	// XOR3 matches only the LUT (single-cell table).
	if c := mtG.match(logic.TTXor3); c != nil {
		t.Errorf("granular XOR3 single-cell match = %v, want none", c)
	}
	if c := mtL.match(logic.TTXor3); c == nil || c.Name != "LUT3" {
		t.Errorf("lut XOR3 match = %v", c)
	}
}

func TestCutMerge(t *testing.T) {
	a := cut{n: 2}
	a.leaves = [K]int32{1, 5}
	b := cut{n: 2}
	b.leaves = [K]int32{3, 5}
	m, ok := mergeCuts(&a, &b)
	if !ok || m.n != 3 || m.leaves != [K]int32{1, 3, 5} {
		t.Fatalf("merge = %v ok=%v", m, ok)
	}
	c := cut{n: 2}
	c.leaves = [K]int32{7, 9}
	if _, ok := mergeCuts(&m, &c); ok {
		t.Fatal("oversize merge accepted")
	}
}

func TestDepthAndAreaReported(t *testing.T) {
	_, res := mapSource(t, aluSrc, cells.GranularPLB())
	if res.Area <= 0 || res.Depth <= 0 {
		t.Fatalf("area=%v depth=%v", res.Area, res.Depth)
	}
	total := 0
	for _, n := range res.CellCounts {
		total += n
	}
	if total == 0 {
		t.Fatal("no cells mapped")
	}
}

func TestAreaRecoveryDoesNotBreakEquivalence(t *testing.T) {
	src := `
module w(input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = (a + b) ^ (a & b);
endmodule`
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(d, cells.GranularPLB(), Options{AreaPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.Equivalent(nl, res.Netlist, 24, 2, 7); err != nil {
		t.Fatal(err)
	}
}

func TestMapSequentialShellPreserved(t *testing.T) {
	ref, res := mapSource(t, aluSrc, cells.LUTPLB())
	rs, ms := ref.ComputeStats(), res.Netlist.ComputeStats()
	if rs.DFFs != ms.DFFs {
		t.Fatalf("FF count changed: %d -> %d", rs.DFFs, ms.DFFs)
	}
	rpi, rpo := ref.PortNames()
	mpi, mpo := res.Netlist.PortNames()
	if len(rpi) != len(mpi) || len(rpo) != len(mpo) {
		t.Fatal("port interface changed")
	}
}

func TestMapDepthNoWorseThanAIGTimesLUT(t *testing.T) {
	// The delay-oriented cover cannot be deeper than one LUT per AIG
	// level (each AND node is coverable by its trivial cut).
	nl, err := rtl.Compile(aluSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(3)
	arch := cells.LUTPLB()
	res, err := Map(d, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lut := arch.Library().Cell("LUT3")
	bound := float64(d.G.MaxLevel()) * lut.Intrinsic
	if res.Depth > bound+1e-9 {
		t.Fatalf("mapped depth %.1f exceeds trivial bound %.1f", res.Depth, bound)
	}
}

func TestAreaPassesReduceArea(t *testing.T) {
	nl, err := rtl.Compile(aluSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(2)
	arch := cells.GranularPLB()
	delayOnly, err := Map(d, arch, Options{AreaPasses: -1})
	if err != nil {
		// -1 is not supported; use the minimal configuration instead.
		delayOnly, err = Map(d, arch, Options{AreaPasses: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	recovered, err := Map(d, arch, Options{AreaPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Area > delayOnly.Area*1.02 {
		t.Errorf("area recovery grew area: %.1f -> %.1f", delayOnly.Area, recovered.Area)
	}
}

func TestConstantOutputsMap(t *testing.T) {
	src := `
module c(input a, output y0, output y1, output ya);
  assign y0 = a & ~a;
  assign y1 = a | ~a;
  assign ya = a;
endmodule`
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	d.Optimize(2)
	res, err := Map(d, cells.GranularPLB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.Equivalent(nl, res.Netlist, 4, 1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestMapPurelySequentialDesign(t *testing.T) {
	src := `
module s(input clk, input d, output q);
  reg r1;
  reg r2;
  always r1 <= d;
  always r2 <= r1;
  assign q = r2;
endmodule`
	nl, err := rtl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := aig.FromNetlist(nl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(d, cells.LUTPLB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.Equivalent(nl, res.Netlist, 6, 6, 8); err != nil {
		t.Fatal(err)
	}
	if res.Netlist.ComputeStats().DFFs != 2 {
		t.Fatal("FFs lost")
	}
}
