package viamap

import (
	"fmt"
	"sync"

	"vpga/internal/cells"
	"vpga/internal/logic"
	"vpga/internal/netlist"
)

// programCache memoizes personalizations: each configuration has at
// most 256 distinct 3-input functions.
var (
	cacheMu      sync.Mutex
	programCache = map[string]*InstanceProgram{}
)

// CachedProgram is Program with global memoization.
func CachedProgram(cfgName string, fn uint64) (*InstanceProgram, error) {
	key := fmt.Sprintf("%s/%02x", cfgName, fn)
	cacheMu.Lock()
	if p, ok := programCache[key]; ok {
		cacheMu.Unlock()
		return p, nil
	}
	cacheMu.Unlock()
	p, err := Program(cfgName, logic.NewTT(3, fn))
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	programCache[key] = p
	cacheMu.Unlock()
	return p, nil
}

// FabricReport summarizes the via personalization of a packed design.
type FabricReport struct {
	// PopulatedVias is the total via count across all instances,
	// including polarity-buffer and flip-flop hookup vias.
	PopulatedVias int
	// PotentialPerPLB is the tile's potential via-site count.
	PotentialPerPLB int
	// SRAMBitsEquivalent is the configuration storage an SRAM fabric
	// would need for the same programmability (one bit per site).
	SRAMBitsEquivalent int
	// ByConfig tallies populated vias per configuration name.
	ByConfig map[string]int
	// Instances counts personalized instances.
	Instances int
}

// FabricVias personalizes every configuration instance of the
// implementation netlist and tallies via counts. FA macro pairs share
// their propagate stage; the shared cell is counted once.
func FabricVias(nl *netlist.Netlist, arch *cells.PLBArch) (*FabricReport, error) {
	rep := &FabricReport{
		PotentialPerPLB:    PotentialSites(arch),
		SRAMBitsEquivalent: SRAMBitsEquivalent(arch),
		ByConfig:           map[string]int{},
	}
	groupSeen := map[int32]bool{}
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindDFF:
			// D input column via + Q output via.
			rep.PopulatedVias += 2
			rep.ByConfig["FF"] += 2
			rep.Instances++
			continue
		case netlist.KindGate:
		default:
			continue
		}
		if n.Type == "INV" || n.Type == "BUF" {
			// Polarity/repeater buffers: one tap via.
			rep.PopulatedVias++
			rep.ByConfig[n.Type]++
			rep.Instances++
			continue
		}
		fn := normalize3(n.Func)
		p, err := CachedProgram(n.Type, fn.Bits)
		if err != nil {
			return nil, fmt.Errorf("viamap: node %d (%s): %w", n.ID, n.Type, err)
		}
		v := p.Vias()
		if n.Type == "FA" && n.Group != 0 {
			if groupSeen[n.Group] {
				// Second half of the macro: the propagate XOA is shared;
				// do not recount its vias.
				for i := range p.Cells {
					if p.Cells[i].Stage == "xoa" {
						v -= p.Cells[i].Vias()
						break
					}
				}
			}
			groupSeen[n.Group] = true
		}
		rep.PopulatedVias += v
		rep.ByConfig[n.Type] += v
		rep.Instances++
	}
	return rep, nil
}
