// Package viamap generates the via personalization of a packed VPGA:
// for every configuration instance it derives the concrete component
// programming (pin-to-literal bindings, constant ties, programmable
// inversions, LUT row values) and tallies populated versus potential
// via sites per PLB and for the whole fabric.
//
// This is the "via-patterned" part of the Via-Patterned Gate Array:
// where an FPGA stores its configuration in SRAM bits, the VPGA
// realizes it as vias placed at a subset of the potential via sites.
// The paper's core economic argument (Sec. 1–2) is that "greater
// configurability only results in an increase in potential via sites"
// whose silicon cost is far below SRAM configuration, which is what
// makes the granular PLB affordable. The package quantifies that:
// potential sites per PLB, populated vias per instance, and the
// SRAM-bit count an equivalent FPGA block would need.
package viamap

import (
	"fmt"
	"sort"
	"strings"

	"vpga/internal/cells"
	"vpga/internal/logic"
)

// Source describes what a component input pin is via-connected to.
type Source struct {
	// Kind is "input" (a PLB input, Index = leaf position), "const"
	// (tie to rail, Index = 0/1), or "stage" (an intermediate component
	// output inside the PLB, Name = producing stage).
	Kind  string
	Index int
	Neg   bool // through the complemented polarity rail
	Name  string
}

// String renders the source, e.g. "~in1", "0", "stage:xoa".
func (s Source) String() string {
	switch s.Kind {
	case "const":
		return fmt.Sprintf("%d", s.Index)
	case "stage":
		out := "stage:" + s.Name
		if s.Neg {
			out = "~" + out
		}
		return out
	default:
		out := fmt.Sprintf("in%d", s.Index)
		if s.Neg {
			out = "~" + out
		}
		return out
	}
}

// CellProgram is the via personalization of one component cell.
type CellProgram struct {
	Component string // "ND3WI", "MUX2", "XOA", "LUT3"
	Stage     string // role of this cell inside the configuration
	// Pins lists the input bindings; for a MUX the order is d0, d1,
	// sel; for ND3WI the three NAND pins.
	Pins []Source
	// OutputInvert engages the programmable output inversion.
	OutputInvert bool
	// LUTRows holds the 8 personality vias of a LUT3 (row value true =
	// via to the high rail).
	LUTRows []bool
}

// Vias counts the populated via sites of this cell program: one per
// bound pin, one for an engaged output inversion, one per LUT row.
func (c *CellProgram) Vias() int {
	n := len(c.Pins)
	if c.OutputInvert {
		n++
	}
	n += len(c.LUTRows)
	return n
}

// InstanceProgram is the personalization of one configuration
// instance.
type InstanceProgram struct {
	Config string
	Cells  []CellProgram
}

// Vias sums the instance's populated via sites plus one output-column
// via per instance output.
func (p *InstanceProgram) Vias() int {
	n := 1
	for i := range p.Cells {
		n += p.Cells[i].Vias()
	}
	return n
}

// String renders the program compactly.
func (p *InstanceProgram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s{", p.Config)
	for i := range p.Cells {
		c := &p.Cells[i]
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "%s(", c.Stage)
		for j, pin := range c.Pins {
			if j > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(pin.String())
		}
		sb.WriteString(")")
		if c.OutputInvert {
			sb.WriteString("'")
		}
		if len(c.LUTRows) > 0 {
			sb.WriteString("=")
			for r := len(c.LUTRows) - 1; r >= 0; r-- {
				if c.LUTRows[r] {
					sb.WriteString("1")
				} else {
					sb.WriteString("0")
				}
			}
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// literal sources available at a via-configured pin over k PLB inputs.
func pinSources(k int) []Source {
	out := []Source{{Kind: "const", Index: 0}, {Kind: "const", Index: 1}}
	for i := 0; i < k; i++ {
		out = append(out, Source{Kind: "input", Index: i}, Source{Kind: "input", Index: i, Neg: true})
	}
	return out
}

// sourceTT returns the 3-input table a source contributes.
func sourceTT(s Source, stage logic.TT) logic.TT {
	switch s.Kind {
	case "const":
		return logic.ConstTT(3, s.Index == 1)
	case "stage":
		if s.Neg {
			return stage.Not()
		}
		return stage
	default:
		t := logic.VarTT(3, s.Index)
		if s.Neg {
			return t.Not()
		}
		return t
	}
}

// Program derives the via personalization of one configuration
// instance computing fn (≤3 inputs, normalized to 3). The returned
// program is verified: re-evaluating the bound structure reproduces fn
// exactly.
func Program(cfgName string, fn logic.TT) (*InstanceProgram, error) {
	t := normalize3(fn)
	switch cfgName {
	case "ND2", "ND3":
		return solveNand(cfgName, t)
	case "MX":
		return solveMux("MX", "mx", t)
	case "NDMX":
		return solveNDMX(t)
	case "XOAMX":
		return solveXOAMX(t)
	case "XOANDMX":
		return solveXOANDMX(t)
	case "LUT":
		return solveLUT(t)
	case "FA":
		return solveFAHalf(t)
	default:
		return nil, fmt.Errorf("viamap: unknown configuration %q", cfgName)
	}
}

func normalize3(fn logic.TT) logic.TT {
	if fn.N < 3 {
		return fn.Extend(3)
	}
	if fn.N == 3 {
		return fn
	}
	small, _ := fn.Shrink()
	if small.N > 3 {
		panic("viamap: function support exceeds 3")
	}
	return small.Extend(3)
}

// solveNand personalizes a ND3WI: fn = (l0·l1·l2)^inv.
func solveNand(name string, t logic.TT) (*InstanceProgram, error) {
	srcs := pinSources(3)
	for _, out := range []bool{true, false} { // NAND (inverted output) first: it is the native gate
		var rec func(depth int, acc logic.TT, pins []Source) *InstanceProgram
		rec = func(depth int, acc logic.TT, pins []Source) *InstanceProgram {
			if depth == 3 {
				got := acc
				if out {
					got = got.Not()
				}
				if got != t {
					return nil
				}
				return &InstanceProgram{Config: name, Cells: []CellProgram{{
					Component: "ND3WI", Stage: "nd",
					Pins: append([]Source(nil), pins...), OutputInvert: out,
				}}}
			}
			for _, s := range srcs {
				if p := rec(depth+1, acc.And(sourceTT(s, logic.TT{})), append(pins, s)); p != nil {
					return p
				}
			}
			return nil
		}
		if p := rec(0, logic.ConstTT(3, true), nil); p != nil {
			return p, nil
		}
	}
	return nil, fmt.Errorf("viamap: %v is not an AND-family function", t)
}

// solveMux personalizes one 2:1 MUX: fn = MUX(sel; d0, d1).
func solveMux(cfg, stage string, t logic.TT) (*InstanceProgram, error) {
	cell, err := muxCell(stage, t)
	if err != nil {
		return nil, err
	}
	return &InstanceProgram{Config: cfg, Cells: []CellProgram{*cell}}, nil
}

func muxCell(stage string, t logic.TT) (*CellProgram, error) {
	srcs := pinSources(3)
	comp := "MUX2"
	if strings.HasPrefix(stage, "xoa") {
		comp = "XOA"
	}
	for _, sel := range srcs[2:] { // constant select degenerates; skip
		for _, d0 := range srcs {
			for _, d1 := range srcs {
				got := logic.Mux(sourceTT(sel, logic.TT{}), sourceTT(d0, logic.TT{}), sourceTT(d1, logic.TT{}))
				if got == t {
					return &CellProgram{Component: comp, Stage: stage, Pins: []Source{d0, d1, sel}}, nil
				}
			}
		}
	}
	// Pass-through of a literal (constant select).
	for _, d := range srcs {
		if sourceTT(d, logic.TT{}) == t {
			return &CellProgram{Component: comp, Stage: stage,
				Pins: []Source{d, d, {Kind: "const", Index: 0}}}, nil
		}
	}
	return nil, fmt.Errorf("viamap: %v is not a single-MUX function", t)
}

// nd2Programs enumerates ND2WI stage programs: (l0·l1)^inv with a
// distinguished stage name.
func nd2Programs() []struct {
	cell CellProgram
	tt   logic.TT
} {
	srcs := pinSources(3)
	var out []struct {
		cell CellProgram
		tt   logic.TT
	}
	for _, inv := range []bool{true, false} {
		for _, a := range srcs {
			for _, b := range srcs {
				t := sourceTT(a, logic.TT{}).And(sourceTT(b, logic.TT{}))
				if inv {
					t = t.Not()
				}
				out = append(out, struct {
					cell CellProgram
					tt   logic.TT
				}{CellProgram{Component: "ND3WI", Stage: "nd",
					Pins: []Source{a, b, {Kind: "const", Index: 1}}, OutputInvert: inv}, t})
			}
		}
	}
	return out
}

// muxPrograms enumerates first-stage MUX programs over the PLB inputs.
func muxPrograms(stage string) []struct {
	cell CellProgram
	tt   logic.TT
} {
	srcs := pinSources(3)
	var out []struct {
		cell CellProgram
		tt   logic.TT
	}
	comp := "MUX2"
	if strings.HasPrefix(stage, "xoa") {
		comp = "XOA"
	}
	for _, sel := range srcs[2:] {
		for _, d0 := range srcs {
			for _, d1 := range srcs {
				t := logic.Mux(sourceTT(sel, logic.TT{}), sourceTT(d0, logic.TT{}), sourceTT(d1, logic.TT{}))
				out = append(out, struct {
					cell CellProgram
					tt   logic.TT
				}{CellProgram{Component: comp, Stage: stage, Pins: []Source{d0, d1, sel}}, t})
			}
		}
	}
	return out
}

// solveSecondStage finds MUX(sel; A, B) == t where A, B draw from the
// provided stage outputs and literals.
func solveSecondStage(cfg string, t logic.TT, stages []struct {
	cell CellProgram
	tt   logic.TT
}, allowInvStage bool, extra []CellProgram) (*InstanceProgram, error) {
	srcs := pinSources(3)
	lits := make([]struct {
		src Source
		tt  logic.TT
	}, 0, len(srcs))
	for _, s := range srcs {
		lits = append(lits, struct {
			src Source
			tt  logic.TT
		}{s, sourceTT(s, logic.TT{})})
	}
	for si := range stages {
		st := &stages[si]
		stageSrcs := []Source{{Kind: "stage", Name: st.cell.Stage}}
		if allowInvStage {
			stageSrcs = append(stageSrcs, Source{Kind: "stage", Name: st.cell.Stage, Neg: true})
		}
		for _, sel := range srcs[2:] {
			selTT := sourceTT(sel, logic.TT{})
			for _, sd := range stageSrcs {
				sdTT := sourceTT(sd, st.tt)
				// Stage on d0, literal on d1 — and the converse. Also
				// stage vs inverted-stage (the XOR3 wiring).
				for _, l := range lits {
					if logic.Mux(selTT, sdTT, l.tt) == t {
						return assemble(cfg, st.cell, extra, []Source{sd, l.src, sel}), nil
					}
					if logic.Mux(selTT, l.tt, sdTT) == t {
						return assemble(cfg, st.cell, extra, []Source{l.src, sd, sel}), nil
					}
				}
				if allowInvStage {
					inv := Source{Kind: "stage", Name: st.cell.Stage, Neg: !sd.Neg}
					if logic.Mux(selTT, sdTT, sourceTT(inv, st.tt)) == t {
						return assemble(cfg, st.cell, extra, []Source{sd, inv, sel}), nil
					}
				}
			}
		}
	}
	return nil, fmt.Errorf("viamap: no %s decomposition for %v", cfg, t)
}

func assemble(cfg string, stage CellProgram, extra []CellProgram, outPins []Source) *InstanceProgram {
	cells := []CellProgram{stage}
	cells = append(cells, extra...)
	cells = append(cells, CellProgram{Component: "MUX2", Stage: "mx", Pins: outPins})
	return &InstanceProgram{Config: cfg, Cells: cells}
}

func solveNDMX(t logic.TT) (*InstanceProgram, error) {
	return solveSecondStage("NDMX", t, nd2Programs(), false, nil)
}

func solveXOAMX(t logic.TT) (*InstanceProgram, error) {
	return solveSecondStage("XOAMX", t, muxPrograms("xoa"), true, nil)
}

func solveXOANDMX(t logic.TT) (*InstanceProgram, error) {
	// Try MUX(sel; xoa-stage, nd-stage) with both stage families live.
	srcs := pinSources(3)
	muxes := muxPrograms("xoa")
	nands := nd2ProgramsWide()
	for _, sel := range srcs[2:] {
		selTT := sourceTT(sel, logic.TT{})
		for mi := range muxes {
			for _, mneg := range []bool{false, true} {
				mTT := muxes[mi].tt
				if mneg {
					mTT = mTT.Not()
				}
				mSrc := Source{Kind: "stage", Name: "xoa", Neg: mneg}
				for ni := range nands {
					nSrc := Source{Kind: "stage", Name: "nd"}
					if logic.Mux(selTT, mTT, nands[ni].tt) == t {
						return assemble("XOANDMX", muxes[mi].cell, []CellProgram{nands[ni].cell},
							[]Source{mSrc, nSrc, sel}), nil
					}
					if logic.Mux(selTT, nands[ni].tt, mTT) == t {
						return assemble("XOANDMX", muxes[mi].cell, []CellProgram{nands[ni].cell},
							[]Source{nSrc, mSrc, sel}), nil
					}
				}
			}
		}
	}
	// Degenerate: the pure XOAMX wiring with the ND3WI tied off.
	if p, err := solveSecondStage("XOANDMX", t, muxes, true, nil); err == nil {
		return p, nil
	}
	return nil, fmt.Errorf("viamap: no XOANDMX decomposition for %v", t)
}

// nd2ProgramsWide enumerates full 3-input ND3WI stage programs.
func nd2ProgramsWide() []struct {
	cell CellProgram
	tt   logic.TT
} {
	srcs := pinSources(3)
	var out []struct {
		cell CellProgram
		tt   logic.TT
	}
	for _, inv := range []bool{true, false} {
		for _, a := range srcs {
			for _, b := range srcs {
				for _, c := range srcs {
					t := sourceTT(a, logic.TT{}).And(sourceTT(b, logic.TT{})).And(sourceTT(c, logic.TT{}))
					if inv {
						t = t.Not()
					}
					out = append(out, struct {
						cell CellProgram
						tt   logic.TT
					}{CellProgram{Component: "ND3WI", Stage: "nd",
						Pins: []Source{a, b, c}, OutputInvert: inv}, t})
				}
			}
		}
	}
	return out
}

// solveLUT personalizes a LUT3: one via per truth-table row.
func solveLUT(t logic.TT) (*InstanceProgram, error) {
	rows := make([]bool, 8)
	for r := uint(0); r < 8; r++ {
		rows[r] = t.Eval(r)
	}
	return &InstanceProgram{Config: "LUT", Cells: []CellProgram{{
		Component: "LUT3", Stage: "lut",
		Pins:    []Source{{Kind: "input", Index: 0}, {Kind: "input", Index: 1}, {Kind: "input", Index: 2}},
		LUTRows: rows,
	}}}, nil
}

// solveFAHalf personalizes one output of the FA macro (sum or carry);
// the two halves share the propagate XOA and the generate ND3WI.
func solveFAHalf(t logic.TT) (*InstanceProgram, error) {
	switch {
	case isXorClass(t):
		// sum = P ⊕ in2, P = in0 ⊕ in1 on the XOA; the second MUX
		// selects between P and ~P (the Fig. 3 inverter path).
		xoa, err := muxCell("xoa", logic.VarTT(3, 0).Xor(logic.VarTT(3, 1)))
		if err != nil {
			return nil, err
		}
		prog := assemble("FA", *xoa, nil, []Source{
			{Kind: "stage", Name: "xoa"},
			{Kind: "stage", Name: "xoa", Neg: true},
			{Kind: "input", Index: 2},
		})
		if t == logic.TTXnor3 {
			prog.Cells[len(prog.Cells)-1].OutputInvert = true
		}
		return prog, nil
	default:
		// carry = MUX(P; G, Cin) with G = in0·in1 on the ND3WI,
		// possibly with input polarities folded in (NPN variants).
		nands := nd2ProgramsWide()
		muxes := muxPrograms("xoa")
		for mi := range muxes {
			for ni := range nands {
				for _, cinNeg := range []bool{false, true} {
					cin := logic.VarTT(3, 2)
					if cinNeg {
						cin = cin.Not()
					}
					got := logic.Mux(muxes[mi].tt, nands[ni].tt, cin)
					if got == t {
						return &InstanceProgram{Config: "FA", Cells: []CellProgram{
							muxes[mi].cell, nands[ni].cell,
							{Component: "MUX2", Stage: "mx", Pins: []Source{
								{Kind: "stage", Name: "nd"},
								{Kind: "input", Index: 2, Neg: cinNeg},
								{Kind: "stage", Name: "xoa"},
							}},
						}}, nil
					}
				}
			}
		}
		return nil, fmt.Errorf("viamap: %v is not a full-adder carry variant", t)
	}
}

func isXorClass(t logic.TT) bool {
	return t == logic.TTXor3 || t == logic.TTXnor3
}

// Verify re-evaluates an instance program and checks it computes fn.
func Verify(p *InstanceProgram, fn logic.TT) error {
	t := normalize3(fn)
	stageVals := map[string]logic.TT{}
	var final logic.TT
	for i := range p.Cells {
		c := &p.Cells[i]
		var out logic.TT
		switch {
		case len(c.LUTRows) > 0:
			bits := uint64(0)
			for r, v := range c.LUTRows {
				if v {
					bits |= 1 << uint(r)
				}
			}
			out = logic.NewTT(3, bits)
		case c.Component == "ND3WI":
			out = logic.ConstTT(3, true)
			for _, pin := range c.Pins {
				out = out.And(sourceTT(pin, stageVals[pin.Name]))
			}
			if c.OutputInvert {
				out = out.Not()
			}
		default: // MUX2 / XOA
			d0 := sourceTT(c.Pins[0], stageVals[c.Pins[0].Name])
			d1 := sourceTT(c.Pins[1], stageVals[c.Pins[1].Name])
			sel := sourceTT(c.Pins[2], stageVals[c.Pins[2].Name])
			out = logic.Mux(sel, d0, d1)
			if c.OutputInvert {
				out = out.Not()
			}
		}
		stageVals[c.Stage] = out
		final = out
	}
	if final != t {
		return fmt.Errorf("viamap: program %s computes %v, want %v", p, final, t)
	}
	return nil
}

// PotentialSites estimates the potential via sites of one PLB tile:
// for every component input pin, one site per reachable source (both
// polarities of each PLB input, the two rails, and each other
// component output); one output-inversion site per combinational
// component; 8 personality sites per LUT; one output-column site per
// component.
func PotentialSites(arch *cells.PLBArch) int {
	comb := 0
	for _, s := range arch.Slots {
		if s.Component != "DFF" {
			comb++
		}
	}
	// Sources visible to a pin: 2 rails + 2×3 input polarities +
	// other component outputs.
	sources := 2 + 2*3 + (comb - 1)
	sites := 0
	for _, s := range arch.Slots {
		switch s.Component {
		case "DFF":
			sites += sources // D-pin column
			continue
		case "LUT3":
			sites += 8 // personality
		}
		c := arch.Library().Cell(s.Component)
		sites += c.MaxInputs * sources
		sites += 1 // output inversion
		sites += 1 // output column
	}
	return sites
}

// SRAMBitsEquivalent estimates the SRAM configuration bits an
// FPGA-style implementation of the same block would need: one bit per
// potential via site (each site's presence/absence is one bit of
// configuration), which is the apples-to-apples comparison behind the
// paper's "the area cost for such heterogeneity is far less for a
// VPGA than for SRAM programmed fabrics".
func SRAMBitsEquivalent(arch *cells.PLBArch) int { return PotentialSites(arch) }

// ConfigNames lists the configurations this package can personalize.
func ConfigNames() []string {
	out := []string{"ND2", "ND3", "MX", "NDMX", "XOAMX", "XOANDMX", "LUT", "FA"}
	sort.Strings(out)
	return out
}
