package viamap

import (
	"testing"

	"vpga/internal/cells"
	"vpga/internal/logic"
)

func TestProgramNandFamily(t *testing.T) {
	for _, fn := range []logic.TT{logic.TTNand3, logic.TTAnd3, logic.TTOr3,
		logic.TTNand2.Extend(3), logic.TTNor2.Extend(3), logic.VarTT(3, 1).Not()} {
		p, err := Program("ND3", fn)
		if err != nil {
			t.Fatalf("ND3 %v: %v", fn, err)
		}
		if err := Verify(p, fn); err != nil {
			t.Fatalf("%v", err)
		}
		if p.Cells[0].Component != "ND3WI" {
			t.Fatalf("wrong component %s", p.Cells[0].Component)
		}
	}
	if _, err := Program("ND3", logic.TTXor3); err == nil {
		t.Fatal("XOR3 must not personalize onto a ND3WI")
	}
}

func TestProgramMux(t *testing.T) {
	for _, fn := range []logic.TT{logic.TTMux3, logic.TTXor2.Extend(3),
		logic.TTXnor2.Extend(3), logic.TTAnd2.Extend(3), logic.VarTT(3, 2)} {
		p, err := Program("MX", fn)
		if err != nil {
			t.Fatalf("MX %v: %v", fn, err)
		}
		if err := Verify(p, fn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Program("MX", logic.TTMaj3); err == nil {
		t.Fatal("MAJ3 must not fit a single MUX")
	}
}

// TestProgramAllConfigCoverage checks that every function each
// configuration claims to implement actually personalizes, and that
// the verified program matches.
func TestProgramAllConfigCoverage(t *testing.T) {
	arch := cells.GranularPLB()
	for _, name := range []string{"ND2", "ND3", "MX", "NDMX", "XOAMX", "XOANDMX"} {
		cfg := arch.Config(name)
		count := 0
		for bits := uint64(0); bits < 256; bits++ {
			fn := logic.NewTT(3, bits)
			if !cfg.Implements(fn) {
				continue
			}
			count++
			p, err := Program(name, fn)
			if err != nil {
				t.Fatalf("%s claims %v but personalization failed: %v", name, fn, err)
			}
			if err := Verify(p, fn); err != nil {
				t.Fatalf("%s %v: %v", name, fn, err)
			}
		}
		if count == 0 {
			t.Fatalf("%s implements nothing?", name)
		}
		t.Logf("%-8s personalized %3d functions", name, count)
	}
}

func TestProgramLUT(t *testing.T) {
	for bits := uint64(0); bits < 256; bits += 17 {
		fn := logic.NewTT(3, bits)
		p, err := Program("LUT", fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(p, fn); err != nil {
			t.Fatal(err)
		}
		if len(p.Cells[0].LUTRows) != 8 {
			t.Fatal("LUT personality must have 8 rows")
		}
	}
}

func TestProgramFA(t *testing.T) {
	for _, fn := range []logic.TT{logic.TTXor3, logic.TTXnor3, logic.TTMaj3} {
		p, err := Program("FA", fn)
		if err != nil {
			t.Fatalf("FA %v: %v", fn, err)
		}
		if err := Verify(p, fn); err != nil {
			t.Fatalf("FA %v: %v", fn, err)
		}
	}
	// NPN variants of the carry (inverted operands) must personalize too.
	for _, fn := range logic.NPNClass(logic.TTMaj3) {
		p, err := Program("FA", fn)
		if err != nil {
			t.Fatalf("FA maj-variant %v: %v", fn, err)
		}
		if err := Verify(p, fn); err != nil {
			t.Fatal(err)
		}
	}
}

func TestViaCountsPositive(t *testing.T) {
	p, err := Program("NDMX", logic.Mux(logic.VarTT(3, 2), logic.TTAnd2.Extend(3), logic.VarTT(3, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Vias() < 5 {
		t.Fatalf("NDMX vias = %d, implausibly few", p.Vias())
	}
	if p.String() == "" {
		t.Fatal("empty render")
	}
}

func TestPotentialSitesGranularVsLUT(t *testing.T) {
	g := PotentialSites(cells.GranularPLB())
	l := PotentialSites(cells.LUTPLB())
	if g <= l {
		t.Fatalf("granular PLB should expose more potential via sites (%d) than the LUT PLB (%d): that is its configurability cost", g, l)
	}
	// ... but per the paper the cost ratio is far below the area ratio
	// an SRAM fabric would pay: each site is one via, not one SRAM bit
	// of ~6 transistors.
	if SRAMBitsEquivalent(cells.GranularPLB()) != g {
		t.Fatal("SRAM-equivalent bits should equal potential sites")
	}
	t.Logf("potential via sites: granular=%d lut=%d (ratio %.2f)", g, l, float64(g)/float64(l))
}

func TestConfigNamesSorted(t *testing.T) {
	names := ConfigNames()
	if len(names) != 8 {
		t.Fatalf("got %d config names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	p, err := Program("MX", logic.TTXor2.Extend(3))
	if err != nil {
		t.Fatal(err)
	}
	p.Cells[0].OutputInvert = !p.Cells[0].OutputInvert
	if err := Verify(p, logic.TTXor2.Extend(3)); err == nil {
		t.Fatal("corrupted program passed verification")
	}
}
