#!/usr/bin/env bash
# Run the key benchmarks (annealing move throughput, global routing,
# the end-to-end matrix, Table 1 die area) and emit one machine-readable
# trajectory point for the BENCH_*.json perf history.
#
# Usage: scripts/bench.sh [out.json]        (default: BENCH_5.json)
#   BENCH_PATTERN  override the -bench regexp
#   BENCH_TIME     override -benchtime (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_5.json}"
pattern="${BENCH_PATTERN:-AnnealMoves|GlobalRouting|MatrixParallel|Table1DieArea}"
benchtime="${BENCH_TIME:-1s}"

raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count 1 .)
printf '%s\n' "$raw" >&2

{
  echo "{"
  echo "  \"schema\": 1,"
  echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"git_rev\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"benchmarks\": ["
  printf '%s\n' "$raw" | awk '
    BEGIN { sep = "" }
    /^Benchmark/ {
      printf "%s", sep
      printf "    {\"name\":\"%s\",\"iterations\":%s", $1, $2
      for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub("/", "_per_", unit)
        gsub("%", "pct_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        gsub(/_+/, "_", unit)
        sub(/_$/, "", unit)
        printf ",\"%s\":%s", unit, $i
      }
      printf "}"
      sep = ",\n"
    }
    END { print "" }'
  echo "  ]"
  echo "}"
} > "$out"

if command -v jq >/dev/null 2>&1; then
  jq -e '.benchmarks | length > 0' "$out" >/dev/null
fi
echo "wrote $out" >&2
