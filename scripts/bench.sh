#!/usr/bin/env bash
# Run the key benchmarks (annealing move throughput, global routing,
# the end-to-end matrix, Table 1 die area) and emit one machine-readable
# trajectory point for the BENCH_*.json perf history, then print a
# delta table against the most recent committed trajectory point.
#
# Usage: scripts/bench.sh [out.json]        (default: BENCH_6.json)
#   BENCH_PATTERN  override the -bench regexp
#   BENCH_TIME     override -benchtime (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_6.json}"
pattern="${BENCH_PATTERN:-AnnealMoves|GlobalRouting|MatrixParallel|Table1DieArea}"
benchtime="${BENCH_TIME:-1s}"

raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -count 1 .)
printf '%s\n' "$raw" >&2

{
  echo "{"
  echo "  \"schema\": 1,"
  echo "  \"generated\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"git_rev\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
  echo "  \"go\": \"$(go env GOVERSION)\","
  # Host provenance: a trajectory point is only comparable to points
  # measured on like hardware, so record where this one came from.
  echo "  \"host\": {"
  echo "    \"hostname\": \"$(hostname 2>/dev/null || echo unknown)\","
  echo "    \"os\": \"$(uname -sr 2>/dev/null || echo unknown)\","
  echo "    \"arch\": \"$(uname -m 2>/dev/null || echo unknown)\","
  echo "    \"cpus\": $(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0),"
  cpu_model=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
  if [[ -z "$cpu_model" ]] && command -v sysctl >/dev/null 2>&1; then
    cpu_model=$(sysctl -n machdep.cpu.brand_string 2>/dev/null || true)
  fi
  echo "    \"cpu_model\": \"${cpu_model:-unknown}\""
  echo "  },"
  echo "  \"benchtime\": \"$benchtime\","
  echo "  \"benchmarks\": ["
  printf '%s\n' "$raw" | awk '
    BEGIN { sep = "" }
    /^Benchmark/ {
      printf "%s", sep
      printf "    {\"name\":\"%s\",\"iterations\":%s", $1, $2
      for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub("/", "_per_", unit)
        gsub("%", "pct_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        gsub(/_+/, "_", unit)
        sub(/_$/, "", unit)
        printf ",\"%s\":%s", unit, $i
      }
      printf "}"
      sep = ",\n"
    }
    END { print "" }'
  echo "  ]"
  echo "}"
} > "$out"

if command -v jq >/dev/null 2>&1; then
  jq -e '.benchmarks | length > 0' "$out" >/dev/null
fi
echo "wrote $out" >&2

# Delta table: the fresh point against the newest committed BENCH_*.json
# (the out file itself excluded, so regenerating a committed point still
# compares against its predecessor).
base=$(git ls-files 'BENCH_*.json' | grep -Fxv "$out" | sort -V | tail -1 || true)
if [[ -n "$base" && -f "$base" ]]; then
  python3 - "$base" "$out" <<'PY' >&2
import json, sys
basePath, newPath = sys.argv[1], sys.argv[2]
base, new = (json.load(open(p)) for p in (basePath, newPath))
byName = {b["name"]: b for b in base["benchmarks"]}
print(f"\ndelta vs {basePath} (rev {base.get('git_rev', '?')}):")
print(f"  {'benchmark':<30} {'metric':<16} {'old':>14} {'new':>14} {'delta':>9}")
for nb in new["benchmarks"]:
    ob = byName.get(nb["name"])
    if ob is None:
        print(f"  {nb['name']:<30} (no baseline entry)")
        continue
    for metric, val in nb.items():
        if metric in ("name", "iterations") or metric not in ob:
            continue
        old = ob[metric]
        pct = f"{100.0 * (val - old) / old:+8.1f}%" if old else "      n/a"
        print(f"  {nb['name']:<30} {metric:<16} {old:>14.6g} {val:>14.6g} {pct}")
PY
else
  echo "no committed BENCH_*.json to diff against" >&2
fi
