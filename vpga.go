// Package vpga is the public API of the VPGA CAD system, a
// from-scratch reproduction of "Exploring Logic Block Granularity for
// Regular Fabrics" (Koorapaty et al., DATE 2004).
//
// A Via-Patterned Gate Array (VPGA) is a regular fabric: an array of
// patternable logic blocks (PLBs) customized by via placement, with
// ASIC-style routing on the metal layers above the array. This package
// exposes the complete implementation flow of the paper's Figure 6 —
//
//	RTL → synthesis (AIG) → technology mapping → regularity-driven
//	compaction → placement → packing into the PLB array → routing →
//	post-layout static timing
//
// — together with the two PLB architectures under comparison (the
// LUT-based PLB of Fig. 1 and the granular PLB of Fig. 4), the
// Section 2.1 function-class analysis, the four benchmark generators,
// and the experiment drivers that regenerate Tables 1–2.
//
// Quick start:
//
//	design := vpga.ALU(16)
//	report, err := vpga.Run(design, vpga.Config{
//	    Arch: vpga.GranularPLB(),
//	    Flow: vpga.FlowB,
//	})
//
// For serialization — scripted runs, the vpgad service, the
// content-addressed report cache — describe the run declaratively
// instead and let the system resolve it:
//
//	report, err := vpga.RunRequest(ctx, vpga.FlowRequest{
//	    Design: "alu",
//	    Arch:   vpga.ArchSpec{Kind: "granular"},
//	    Seed:   7,
//	}, nil)
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory.
package vpga

import (
	"context"
	"io"

	"vpga/internal/artifact"
	"vpga/internal/bench"
	"vpga/internal/cells"
	"vpga/internal/core"
	"vpga/internal/defect"
	"vpga/internal/logic"
	"vpga/internal/netlist"
	"vpga/internal/obs"
	"vpga/internal/rtl"
)

// Design is a named RTL benchmark.
type Design = bench.Design

// PLBArch describes a patternable-logic-block architecture.
type PLBArch = cells.PLBArch

// PLBConfig is one logic configuration of Section 2.3 (MX, ND3, NDMX,
// XOAMX, XOANDMX, LUT, FA, FF).
type PLBConfig = cells.Config

// Config parameterizes one flow run: architecture, flow kind, seed,
// effort, defect map, tracing. It is the resolved, in-memory form; the
// serializable counterpart is FlowRequest.
type Config = core.Config

// Report carries every figure of merit from a flow run.
type Report = core.Report

// FlowKind selects the paper's flow a (ASIC-style, no packing) or
// flow b (full flow with PLB-array packing).
type FlowKind = core.FlowKind

// Flow selectors.
const (
	FlowA = core.FlowA
	FlowB = core.FlowB
)

// Netlist is the gate-level intermediate representation.
type Netlist = netlist.Netlist

// GranularPLB returns the paper's Figure 4 architecture: two 2:1
// MUXes, the XOA MUX, one ND3WI gate and a flip-flop.
func GranularPLB() *PLBArch { return cells.GranularPLB() }

// LUTPLB returns the Figure 1 baseline: one 3-LUT, two ND3WI gates
// and a flip-flop.
func LUTPLB() *PLBArch { return cells.LUTPLB() }

// CustomPLB builds a parameterized architecture for granularity
// exploration: nMux 2:1 MUXes, nXoa XOA MUXes, nNand ND3WI gates,
// nLut 3-LUTs and nFF flip-flops.
func CustomPLB(name string, nMux, nXoa, nNand, nLut, nFF int) *PLBArch {
	return cells.CustomPLB(name, nMux, nXoa, nNand, nLut, nFF)
}

// Run pushes one design through the implementation flow. The context
// cancels the run at stage and iteration boundaries; pass
// context.Background() when no cancellation is needed.
func Run(ctx context.Context, d Design, cfg Config) (*Report, error) {
	return core.RunFlow(ctx, d, cfg)
}

// FlowRequest is the canonical, JSON-serializable description of one
// flow run: a named benchmark or inline RTL, an ArchSpec, the flow
// kind, the seed and every other result-bearing knob. Its normalized
// canonical encoding content-addresses the vpgad report cache
// (FlowRequest.CacheKey); two requests that mean the same run share
// one key regardless of JSON field order or omitted defaults.
type FlowRequest = core.FlowRequest

// ArchSpec is the serializable counterpart of a PLBArch: kind
// "granular", "lut", or "custom" with slot counts.
type ArchSpec = core.ArchSpec

// RunRequest resolves and executes a FlowRequest under the flow
// supervisor (panic isolation; the repair ladder when the request
// injects defects). trace optionally records the run; nil is valid.
//
// Deprecated: use Execute, the one pipeline-backed entry point.
func RunRequest(ctx context.Context, req FlowRequest, trace *TraceRun) (*Report, error) {
	return core.RunRequest(ctx, req, trace)
}

// ExecOptions carries the execution-only knobs of a request run —
// tracing, the stage-granular build cache, artifact retention. None of
// them change the report's bytes.
type ExecOptions = core.ExecOptions

// RunResult is Execute's return value: the report, the request's
// per-stage key chain, and (when ExecOptions.WantArtifacts is set) the
// physical artifacts.
type RunResult = core.RunResult

// Execute is the unified pipeline entry point: it resolves a
// FlowRequest and runs it under the flow supervisor with the given
// execution options. Every other run form — Run, RunFull, RunRequest —
// is a thin wrapper over the same pipeline.
func Execute(ctx context.Context, req FlowRequest, opts ExecOptions) (*RunResult, error) {
	return core.Run(ctx, req, opts)
}

// Stage-granular build cache.

// StageKey is one link of a request's per-stage key chain: a pipeline
// stage name and the content address its boundary artifact lives
// under. Compare two requests' chains (FlowRequest.StageKeys) to
// predict how deep a cached prefix one can restore from the other.
type StageKey = core.StageKey

// StageUse records how one executed stage was satisfied: restored from
// the stage cache or computed (Report.StageCache).
type StageUse = core.StageUse

// StageCache is the stage-granular build cache: per-stage artifacts in
// a content-addressed store plus hit/miss counters. Attach one to
// Config.Stages or ExecOptions.Stages; a nil cache is valid and
// records nothing. Reports are bit-identical with or without it.
type StageCache = core.StageCache

// StageCacheStats maps stage name to cache counters.
type StageCacheStats = core.StageCacheStats

// StageCounts is one stage's hit/miss counters.
type StageCounts = core.StageCounts

// OpenStageCache opens (creating if absent) a stage-granular build
// cache rooted at dir.
func OpenStageCache(dir string) (*StageCache, error) {
	store, err := artifact.Open(dir)
	if err != nil {
		return nil, err
	}
	return core.NewStageCache(store), nil
}

// Compile parses and elaborates RTL source (the dialect documented in
// internal/rtl) into a gate-level netlist.
func Compile(src string) (*Netlist, error) { return rtl.Compile(src) }

// Benchmark generators (the paper's Table 1/2 designs).

// ALU returns a registered W-bit arithmetic-logic unit.
func ALU(width int) Design { return bench.ALU(width) }

// FPU returns a floating-point add/multiply datapath with an M-bit
// mantissa (M = 24 approximates the paper's ≈24k-gate FPU).
func FPU(mantissa int) Design { return bench.FPU(mantissa) }

// Switch returns a P-port, W-bit, depth-D network switch (12×32×4
// approximates the paper's ≈80k-gate design).
func Switch(ports, width, depth int) Design { return bench.Switch(ports, width, depth) }

// Firewire returns the control/sequential-dominated link controller.
func Firewire(nregs int) Design { return bench.Firewire(nregs) }

// Suite bundles the four benchmarks.
type Suite = bench.Suite

// PaperSuite returns the four designs at paper-equivalent sizes.
func PaperSuite() Suite { return bench.PaperSuite() }

// TestSuite returns miniature versions for fast experimentation.
func TestSuite() Suite { return bench.TestSuite() }

// Experiments.

// Matrix is the 4-design × 2-architecture × 2-flow experiment of
// Tables 1 and 2.
type Matrix = core.Matrix

// MatrixOptions configures RunMatrix.
type MatrixOptions = core.MatrixOptions

// FlowError is the structured failure record of one flow run.
type FlowError = core.FlowError

// AttemptRecord documents one rung of the repair ladder.
type AttemptRecord = core.AttemptRecord

// RunMatrix executes the full Table 1/2 experiment under the flow
// supervisor: worker panics, per-run timeouts and unroutable defect
// maps become entries in the matrix's error ledger instead of crashes.
func RunMatrix(ctx context.Context, s Suite, opts MatrixOptions) (*Matrix, error) {
	return core.RunMatrix(ctx, s, opts)
}

// Claims holds the derived Section 3.2 statistics.
type Claims = core.Claims

// Fig2Text renders the Section 2.1 / Figure 2 function-class analysis.
func Fig2Text() string { return core.Fig2Text() }

// SweepPoint is one granularity-sweep sample.
type SweepPoint = core.SweepPoint

// SweepOptions configures the exploration sweeps: the flow seed, the
// parallel worker width (0 = all cores; results are bit-identical at
// any width) and an optional Tracer.
type SweepOptions = core.SweepOptions

// RunGranularitySweep runs a design across a family of PLB
// architectures.
func RunGranularitySweep(ctx context.Context, d Design, archs []*PLBArch, opts SweepOptions) ([]SweepPoint, error) {
	return core.RunGranularitySweep(ctx, d, archs, opts)
}

// GranularitySweep runs a design across a family of PLB architectures.
//
// Deprecated: use RunGranularitySweep, which accepts SweepOptions.
func GranularitySweep(ctx context.Context, d Design, archs []*PLBArch, seed int64) ([]SweepPoint, error) {
	return core.RunGranularitySweep(ctx, d, archs, SweepOptions{Seed: seed})
}

// DefaultSweepArchs returns the standard granularity family.
func DefaultSweepArchs() []*PLBArch { return core.DefaultSweepArchs() }

// Logic analysis (Section 2.1).

// TT is a truth table of up to six inputs.
type TT = logic.TT

// S3Feasible reports whether the S3 gate (a 2:1 MUX driven by two
// ND2WI gates) implements the 3-input function f.
func S3Feasible(f TT) bool { return logic.S3Feasible(f) }

// S3FeasibleCount counts S3-implementable 3-input functions (the
// paper's "at least 196").
func S3FeasibleCount() int { return logic.S3FeasibleCount() }

// ModifiedS3Complete reports whether the Figure 3 modified S3 cell
// implements all 256 3-input functions.
func ModifiedS3Complete() bool { return logic.ModifiedS3Complete() }

// FIR returns a T-tap, W-bit FIR filter benchmark — a DSP-domain
// design for application-domain exploration beyond the paper's four.
func FIR(taps, width int) Design { return bench.FIR(taps, width) }

// ClaimStats aggregates the derived claims over several seeds.
type ClaimStats = core.ClaimStats

// StabilityOptions configures RunStabilityStudy: placement effort,
// parallel width, a per-matrix progress callback and an optional
// Tracer.
type StabilityOptions = core.StabilityOptions

// RunStabilityStudy runs the Table 1/2 matrix once per seed and
// reports mean/min/max of every headline claim. Results are
// seed-deterministic at any parallel width.
func RunStabilityStudy(ctx context.Context, s Suite, seeds []int64, opts StabilityOptions) (*ClaimStats, error) {
	return core.RunStabilityStudy(ctx, s, seeds, opts)
}

// StabilityStudy runs the Table 1/2 matrix once per seed.
//
// Deprecated: use RunStabilityStudy, which accepts StabilityOptions.
func StabilityStudy(ctx context.Context, s Suite, seeds []int64, effort int) (*ClaimStats, error) {
	return core.RunStabilityStudy(ctx, s, seeds, StabilityOptions{PlaceEffort: effort})
}

// DomainResult reports per-domain architecture comparisons.
type DomainResult = core.DomainResult

// RunDomainExplore finds the best PLB architecture per application
// domain (the paper's Sec. 4 future work).
func RunDomainExplore(ctx context.Context, domains []Design, archs []*PLBArch, opts SweepOptions) ([]DomainResult, error) {
	return core.RunDomainExplore(ctx, domains, archs, opts)
}

// DomainExplore finds the best PLB architecture per application
// domain.
//
// Deprecated: use RunDomainExplore, which accepts SweepOptions.
func DomainExplore(ctx context.Context, domains []Design, archs []*PLBArch, seed int64) ([]DomainResult, error) {
	return core.RunDomainExplore(ctx, domains, archs, SweepOptions{Seed: seed})
}

// RoutingPoint is one sample of the routing-architecture sweep.
type RoutingPoint = core.RoutingPoint

// RunRoutingSweep routes a packed design under several per-channel
// track capacities (the paper's routing-architecture future work).
func RunRoutingSweep(ctx context.Context, d Design, arch *PLBArch, capacities []int, opts SweepOptions) ([]RoutingPoint, error) {
	return core.RunRoutingSweep(ctx, d, arch, capacities, opts)
}

// RoutingSweep routes a packed design under several per-channel track
// capacities.
//
// Deprecated: use RunRoutingSweep, which accepts SweepOptions.
func RoutingSweep(ctx context.Context, d Design, arch *PLBArch, capacities []int, seed int64) ([]RoutingPoint, error) {
	return core.RunRoutingSweep(ctx, d, arch, capacities, SweepOptions{Seed: seed})
}

// Defect-aware fabric (yield experiments).

// DefectMap is a seeded map of fabric defects: stuck PLB sites, dead
// routing tracks and via faults, in normalized coordinates so one map
// applies to any die size.
type DefectMap = defect.Map

// NewDefectMap samples a defect map at the given rate per fabric tile.
func NewDefectMap(seed int64, rate float64) *DefectMap { return defect.New(seed, rate) }

// RunRepair runs the flow with the bounded-escalation repair loop
// (reseed, widen channels, relax clock) — see Config.Defects and
// Config.RepairBudget.
func RunRepair(ctx context.Context, d Design, cfg Config) (*Report, error) {
	return core.RunFlowRepair(ctx, d, cfg)
}

// YieldResult aggregates a defect-yield sweep.
type YieldResult = core.YieldResult

// YieldOptions configures DefectYield.
type YieldOptions = core.YieldOptions

// DefectYield runs one (design, arch) flow across many independent
// defect maps through the repair ladder and reports fabric yield per
// escalation depth.
func DefectYield(ctx context.Context, d Design, arch *PLBArch, opts YieldOptions) (*YieldResult, error) {
	return core.DefectYield(ctx, d, arch, opts)
}

// Observability.

// Tracer collects flow traces: per-stage wall-time spans, solver
// counters (annealer passes, router negotiation iterations) and repair
// attempts, across any number of concurrent runs. Attach one to
// MatrixOptions.Trace or YieldOptions.Trace, or create per-run handles
// with NewRun for Config.Trace. A nil Tracer (and a nil run handle) is
// valid everywhere and records nothing.
type Tracer = obs.Tracer

// TraceRun is the per-flow-run trace handle carried by Config.Trace.
type TraceRun = obs.Run

// StageTiming is an aggregated per-stage wall-time entry of a traced
// run (Report.Stages, Matrix.StageTotals).
type StageTiming = obs.StageTiming

// SolverMetrics carries the solver counters of a traced run
// (Report.Solver).
type SolverMetrics = obs.SolverMetrics

// NewTracer returns an empty Tracer ready for concurrent use.
func NewTracer() *Tracer { return obs.NewTracer() }

// Artifacts carries the physical results (netlist, placement, packing,
// routing) of a flow run for tools needing more than the report.
type Artifacts = core.Artifacts

// RunFull is Run returning the physical artifacts as well.
func RunFull(ctx context.Context, d Design, cfg Config) (*Report, *Artifacts, error) {
	return core.RunFlowFull(ctx, d, cfg)
}

// WriteFloorplan renders a flow-b result as a textual floorplan: array
// occupancy, per-PLB configuration inventory with via programs, and
// routing totals (the GDSII stand-in).
func WriteFloorplan(w io.Writer, rep *Report, art *Artifacts) error {
	return core.WriteFloorplan(w, rep, art)
}
