package vpga

import (
	"context"
	"testing"

	"vpga/internal/logic"
)

func TestPublicAPISmoke(t *testing.T) {
	// The Section 2.1 helpers.
	if got := S3FeasibleCount(); got < 196 {
		t.Fatalf("S3FeasibleCount = %d", got)
	}
	if !ModifiedS3Complete() {
		t.Fatal("modified S3 should be complete")
	}
	if !S3Feasible(logic.TTNand3) || S3Feasible(logic.TTXor3) {
		t.Fatal("S3Feasible misclassifies")
	}
	// Architectures.
	g, l := GranularPLB(), LUTPLB()
	if g.Area <= l.Area {
		t.Fatal("granular PLB should be larger than the LUT PLB")
	}
	c := CustomPLB("x", 1, 1, 1, 0, 1)
	if c.Area <= 0 {
		t.Fatal("custom PLB degenerate")
	}
	// Compile.
	nl, err := Compile(`module m(input a, output y); assign y = ~a; endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumNodes() == 0 {
		t.Fatal("empty netlist")
	}
}

func TestPublicAPIRunFlow(t *testing.T) {
	rep, err := Run(context.Background(), ALU(8), Config{Arch: GranularPLB(), Flow: FlowB, Seed: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DieArea <= 0 || rep.Rows == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	for _, d := range []Design{ALU(8), FPU(6), Switch(4, 8, 2), Firewire(6)} {
		if _, err := Compile(d.RTL); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	s := TestSuite()
	if len(s.All()) != 4 {
		t.Fatal("suite size")
	}
	if PaperSuite().FPU.Name != "FPU" {
		t.Fatal("paper suite mislabeled")
	}
}

func TestPublicAPIFig2Text(t *testing.T) {
	if s := Fig2Text(); len(s) < 100 {
		t.Fatalf("Fig2Text too short: %q", s)
	}
}

func TestPublicAPIFullAdderConfig(t *testing.T) {
	g := GranularPLB()
	fa := g.Config("FA")
	if fa == nil || !g.CanPack([]*PLBConfig{fa}) {
		t.Fatal("granular PLB must host the FA macro")
	}
	if LUTPLB().CanPack([]*PLBConfig{fa}) {
		t.Fatal("LUT PLB must not host the FA macro")
	}
}
